// Anomaly classification for backend-level alerts (§4.2, §6.2).
//
// When a backend's water level crosses the safety threshold the system must
// decide *why* before acting: normal workload growth is met with scaling,
// session floods (attack signature: #TCP sessions surges without a matching
// RPS rise) with sandbox migration, expensive queries (CPU up, RPS flat)
// with migration/throttling, and anything unclear is flagged for operators.
#pragma once

#include <cstdint>
#include <string_view>

#include "telemetry/service_stats.h"

namespace canal::telemetry {

enum class AnomalyKind : std::uint8_t {
  kNormalGrowth,    ///< workload rose with proportionate RPS — scale out
  kSessionFlood,    ///< sessions surged without RPS — likely attack
  kExpensiveQuery,  ///< CPU rose without RPS/session growth — query of death
  kUndetermined,
};

[[nodiscard]] std::string_view anomaly_kind_name(AnomalyKind kind) noexcept;

struct AnomalyThresholds {
  /// Minimum relative increase treated as a "surge".
  double surge_ratio = 1.5;
  /// RPS growth below this ratio, while sessions surge, signals a flood.
  double rps_flat_ratio = 1.2;
  /// Session occupancy above this is alarming regardless of trend.
  double session_occupancy_alarm = 0.8;
};

/// Classifies the transition from `before` to `now` at one backend.
[[nodiscard]] AnomalyKind classify_backend_anomaly(
    const BackendSnapshot& before, const BackendSnapshot& now,
    const AnomalyThresholds& thresholds = {});

/// Detects phase-synchronized traffic patterns between two services'
/// RPS histories (§4.2 traffic pattern monitoring): Pearson correlation of
/// aligned samples above `threshold`.
[[nodiscard]] bool in_phase(const sim::TimeSeries& a, const sim::TimeSeries& b,
                            sim::TimePoint lo, sim::TimePoint hi,
                            std::size_t sample_points = 10,
                            double threshold = 0.7);

}  // namespace canal::telemetry
