// Label-keyed metrics registry: counters, gauges, histograms, time series.
//
// The registry is the aggregation point between per-request traces and the
// control plane's consumers: Trace spans roll up into per-component latency
// histograms (record_trace), gateway backends publish per-service RPS
// histories under kServiceRpsSeries (which RootCauseAnalyzer::pinpoint
// reads directly), and everything exports as deterministic JSON for the
// bench trajectory files.
//
// Metrics are keyed by (name, labels); labels are an ordered map so the
// canonical key — name{k="v",...} — and the JSON export are deterministic.
// Label keys and values are escaped into the canonical key (key_of), so
// two distinct label sets can never collide on one key.
//
// Histograms are telemetry::HdrHistogram — fixed memory, bounded relative
// error, exact merge — so registries from different shards or seeds fold
// with MetricsRegistry::merge() into the same quantiles the concatenated
// stream would produce. (sim::Histogram remains available for exact
// small-N assertions in tests; the registry hot path is bounded.)
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/ids.h"
#include "sim/flat_map.h"
#include "sim/stats.h"
#include "telemetry/hdr_histogram.h"
#include "telemetry/trace.h"

namespace canal::telemetry {

/// Well-known series name: per-service request rate histories published by
/// gateway backends and consumed by root-cause analysis.
inline constexpr std::string_view kServiceRpsSeries = "service_rps";
/// Label carrying the numeric service id on per-service metrics.
inline constexpr std::string_view kServiceLabel = "service";
/// Label carrying the numeric tenant id on tenant-scoped metrics.
inline constexpr std::string_view kTenantLabel = "tenant";

class MetricsRegistry {
 public:
  /// Ordered so canonical keys and exports are deterministic.
  using Labels = std::map<std::string, std::string>;

  class Counter {
   public:
    void inc(double delta = 1.0) noexcept { value_ += delta; }
    [[nodiscard]] double value() const noexcept { return value_; }

   private:
    double value_ = 0.0;
  };

  class Gauge {
   public:
    void set(double value) noexcept { value_ = value; }
    [[nodiscard]] double value() const noexcept { return value_; }

   private:
    double value_ = 0.0;
  };

  /// Finds or creates the metric for (name, labels).
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  HdrHistogram& histogram(std::string_view name, const Labels& labels = {});
  /// Registry-owned series (created with `max_age` retention on first use).
  sim::TimeSeries& time_series(std::string_view name, const Labels& labels = {},
                               sim::Duration max_age = 0);

  /// Publishes an externally-owned series (e.g. ServiceStats::rps_history)
  /// under (name, labels) without copying. The series must outlive the
  /// registry entry (or be re-linked).
  void link_time_series(std::string_view name, const Labels& labels,
                        const sim::TimeSeries* series);

  /// Lookup without creation; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const HdrHistogram* find_histogram(
      std::string_view name, const Labels& labels = {}) const;
  [[nodiscard]] const sim::TimeSeries* find_time_series(
      std::string_view name, const Labels& labels = {}) const;

  /// Every series registered under `name` (owned or linked), with labels,
  /// in deterministic key order.
  [[nodiscard]] std::vector<std::pair<Labels, const sim::TimeSeries*>>
  series_named(std::string_view name) const;

  /// Every histogram registered under `name`, with labels, in
  /// deterministic key order. Lets consumers (FairnessReport) enumerate
  /// e.g. all tenant-labelled "request_latency_us" histograms.
  [[nodiscard]] std::vector<std::pair<Labels, const HdrHistogram*>>
  histograms_named(std::string_view name) const;

  /// Folds `other` into this registry: counters add, histograms merge
  /// (exactly — see HdrHistogram::merge), gauges take `other`'s value
  /// (last-writer-wins, matching what re-running set() would do). Time
  /// series are intentionally NOT merged: per-run series from different
  /// seeds overlap in simulated time, and interleaving them would corrupt
  /// the time-ordered invariants of TimeSeries; they remain per-run
  /// diagnostics while counters/histograms are the mergeable summary.
  void merge(const MetricsRegistry& other);

  /// Rolls a finished trace into the registry: per-component latency and
  /// queue-wait histograms ("span_latency_us"/"span_queue_wait_us" with a
  /// "component" label), request/byte counters, and an end-to-end latency
  /// histogram ("request_latency_us"). `base` labels (tenant, service,
  /// dataplane, ...) are attached to every metric touched.
  void record_trace(const Trace& trace, const Labels& base = {});

  /// Deterministic JSON of every metric. Histograms export count/mean/
  /// p50/p99/p999; time series export their size and last value.
  [[nodiscard]] std::string to_json() const;

  /// Canonical metric key: name{k="v",k2="v2"} (no braces when unlabeled).
  /// '\' and '"' in label keys/values are backslash-escaped so distinct
  /// label sets always canonicalize to distinct keys — {a: "x\",b=\"y"}
  /// cannot impersonate {a: "x", b: "y"}.
  [[nodiscard]] static std::string key_of(std::string_view name,
                                          const Labels& labels);

 private:
  struct SeriesEntry {
    std::unique_ptr<sim::TimeSeries> owned;
    const sim::TimeSeries* series = nullptr;  ///< owned.get() or external
  };
  using Meta = std::map<std::string, std::pair<std::string, Labels>>;

  // Flat tables for the canonical-key lookups (DESIGN.md §14): metrics are
  // heap-allocated so cached Counter*/HdrHistogram* handles (TraceRecorder)
  // survive rehashes; exports sort keys so JSON stays byte-identical to
  // the previous std::map storage. Meta stays a std::map: touched only on
  // metric creation and *_named enumeration, where its sorted iteration
  // provides the deterministic order.
  sim::FlatHashMap<std::string, std::unique_ptr<Counter>, sim::StringHash>
      counters_;
  sim::FlatHashMap<std::string, std::unique_ptr<Gauge>, sim::StringHash>
      gauges_;
  sim::FlatHashMap<std::string, std::unique_ptr<HdrHistogram>,
                   sim::StringHash>
      histograms_;
  sim::FlatHashMap<std::string, SeriesEntry, sim::StringHash> series_;
  /// key -> (name, labels), for *_named enumeration and labeled lookups.
  Meta histogram_meta_;
  Meta series_meta_;
};

/// Handle-caching front end for MetricsRegistry::record_trace. Binding a
/// (registry, base-labels) pair once interns every label set and canonical
/// key on first use and then records through raw metric pointers, so the
/// per-request path performs no label-map copies or key concatenation.
/// Metric creation stays lazy — a metric exists only once actually
/// recorded — so the registry's JSON export is byte-identical to calling
/// record_trace directly. Registry metrics are heap-allocated, keeping the
/// cached pointers valid for the registry's lifetime.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(MetricsRegistry& registry, MetricsRegistry::Labels base)
      : registry_(&registry), base_(std::move(base)) {}

  [[nodiscard]] bool bound() const noexcept { return registry_ != nullptr; }

  /// Equivalent to registry.record_trace(trace, base), without the
  /// per-span label churn.
  void record(const Trace& trace);

  /// record(trace), plus a "request_errors_total" counter bump when the
  /// request's final `status` is an error (>= 400).
  void record(const Trace& trace, int status);

 private:
  static constexpr std::size_t kComponents =
      static_cast<std::size_t>(Component::kFastpath) + 1;

  struct PerComponent {
    HdrHistogram* latency = nullptr;
    HdrHistogram* queue_wait = nullptr;
    MetricsRegistry::Counter* bytes = nullptr;
    MetricsRegistry::Counter* errors = nullptr;
  };

  const MetricsRegistry::Labels& component_labels(std::size_t idx);

  MetricsRegistry* registry_ = nullptr;
  MetricsRegistry::Labels base_;
  MetricsRegistry::Counter* requests_ = nullptr;
  MetricsRegistry::Counter* request_errors_ = nullptr;
  HdrHistogram* latency_ = nullptr;
  HdrHistogram* queue_wait_ = nullptr;
  std::array<PerComponent, kComponents> comps_{};
  /// base_ + {"component": name}, built on first span of that component.
  std::array<std::unique_ptr<MetricsRegistry::Labels>, kComponents>
      comp_labels_{};
};

/// Routes traces to per-tenant TraceRecorders: tenant t records under
/// base + {"tenant": "<t>"}, so every metric the recorder touches gains
/// the tenant dimension and FairnessReport can slice the registry by
/// tenant. Recorders are created lazily per tenant and cached (the same
/// handle-interning win as TraceRecorder itself).
class TenantRecorderSet {
 public:
  TenantRecorderSet() = default;
  TenantRecorderSet(MetricsRegistry& registry, MetricsRegistry::Labels base)
      : registry_(&registry), base_(std::move(base)) {}

  [[nodiscard]] bool bound() const noexcept { return registry_ != nullptr; }

  /// The recorder for `tenant` (created on first use).
  TraceRecorder& recorder(net::TenantId tenant);

  /// Records `trace` under its own tenant() label with the request's
  /// final status (error counting as in TraceRecorder::record).
  void record(const Trace& trace, int status);

 private:
  MetricsRegistry* registry_ = nullptr;
  MetricsRegistry::Labels base_;
  sim::FlatHashMap<net::TenantId, TraceRecorder, net::IdHash> recorders_;
};

}  // namespace canal::telemetry
