#include "net/address.h"

#include <charconv>
#include <cstdio>

namespace canal::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned part = 0;
    auto [next, ec] = std::from_chars(p, end, part);
    if (ec != std::errc{} || part > 255 || next == p) return std::nullopt;
    value = (value << 8) | part;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

std::string Endpoint::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

}  // namespace canal::net
