// Point-to-point link model: propagation latency + serialization delay.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace canal::net {

/// A unidirectional link. Transit time = propagation latency plus
/// bytes / bandwidth. Bandwidth of 0 means "infinite" (latency only).
class Link {
 public:
  Link() = default;
  Link(sim::Duration latency, std::uint64_t bandwidth_bps)
      : latency_(latency), bandwidth_bps_(bandwidth_bps) {}

  [[nodiscard]] sim::Duration latency() const noexcept { return latency_; }
  [[nodiscard]] std::uint64_t bandwidth_bps() const noexcept {
    return bandwidth_bps_;
  }

  /// One-way transit time for a message of `bytes`.
  [[nodiscard]] sim::Duration transit(std::uint64_t bytes) const noexcept {
    sim::Duration serialization = 0;
    if (bandwidth_bps_ > 0) {
      serialization = static_cast<sim::Duration>(
          static_cast<double>(bytes) * 8.0 / static_cast<double>(bandwidth_bps_) *
          static_cast<double>(sim::kSecond));
    }
    return latency_ + serialization;
  }

 private:
  sim::Duration latency_ = 0;
  std::uint64_t bandwidth_bps_ = 0;
};

/// Canonical intra-cloud latencies used throughout the simulation
/// (Appendix A: intra-AZ RTT < 1 ms).
struct LinkProfiles {
  static Link intra_node() { return Link(sim::microseconds(20), 0); }
  static Link intra_az() { return Link(sim::microseconds(200), 0); }
  static Link cross_az() { return Link(sim::microseconds(1000), 0); }
  static Link cross_region() { return Link(sim::milliseconds(30), 0); }
};

}  // namespace canal::net
