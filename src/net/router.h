// ECMP router: stateless hash-based load distribution across live next-hops.
//
// Canal's LB disaggregation (§4.4) reuses this router for load distribution;
// the Beamer-style redirectors (src/lb) repair the session-consistency break
// that occurs when the membership (and thus the hash base) changes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/address.h"
#include "net/flow.h"

namespace canal::net {

class EcmpRouter {
 public:
  explicit EcmpRouter(std::uint64_t hash_seed = 0xC0FFEE) : seed_(hash_seed) {}

  /// Adds a next-hop; returns its stable slot index.
  std::size_t add_member(Endpoint ep);

  /// Removes a next-hop. The member list is compacted, changing the hash
  /// base for all flows — exactly the consistency hazard Beamer repairs.
  bool remove_member(Endpoint ep);

  [[nodiscard]] const std::vector<Endpoint>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool contains(const Endpoint& ep) const noexcept {
    for (const auto& member : members_) {
      if (member == ep) return true;
    }
    return false;
  }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Picks the next hop for a flow: hash(5-tuple) mod #members.
  [[nodiscard]] std::optional<Endpoint> route(const FiveTuple& flow) const;

  /// Slot index the flow maps to; nullopt if no members.
  [[nodiscard]] std::optional<std::size_t> route_index(
      const FiveTuple& flow) const;

 private:
  std::uint64_t seed_;
  std::vector<Endpoint> members_;
};

}  // namespace canal::net
