#include "net/flow.h"

namespace canal::net {

std::string FiveTuple::to_string() const {
  return Endpoint{src_ip, src_port}.to_string() + "->" +
         Endpoint{dst_ip, dst_port}.to_string() +
         (protocol == Protocol::kTcp ? "/tcp" : "/udp");
}

FiveTuple FiveTuple::reversed() const noexcept {
  return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t flow_hash(const FiveTuple& t) noexcept {
  return flow_hash(t, 0x6A09E667F3BCC908ULL);
}

std::uint64_t flow_hash(const FiveTuple& t, std::uint64_t key) noexcept {
  std::uint64_t h = key;
  h = mix64(h ^ (std::uint64_t{t.src_ip.value()} << 32 | t.dst_ip.value()));
  h = mix64(h ^ (std::uint64_t{t.src_port} << 32 | std::uint64_t{t.dst_port} << 8 |
                 static_cast<std::uint64_t>(t.protocol)));
  return h;
}

}  // namespace canal::net
