// Identifier types shared across the cloud model.
//
// Strong enum-class IDs prevent mixing tenant/service/backend identifiers —
// the exact confusion a multi-tenant gateway must never have.
#pragma once

#include <cstdint>
#include <functional>

namespace canal::net {

enum class TenantId : std::uint32_t {};
/// Globally unique service identifier; in Canal the vSwitch maps the VXLAN
/// VNI to this ID before the outer header is stripped (§4.2).
enum class ServiceId : std::uint64_t {};
enum class NodeId : std::uint32_t {};
enum class PodId : std::uint64_t {};
enum class AzId : std::uint16_t {};
enum class BackendId : std::uint32_t {};
enum class ReplicaId : std::uint32_t {};

template <typename E>
constexpr auto id_value(E e) noexcept {
  return static_cast<std::underlying_type_t<E>>(e);
}

struct IdHash {
  template <typename E>
  std::size_t operator()(E e) const noexcept {
    return std::hash<std::underlying_type_t<E>>{}(id_value(e));
  }
};

}  // namespace canal::net
