// IPv4 addresses and transport endpoints.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace canal::net {

/// An IPv4 address stored host-order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// True for 0.0.0.0.
  [[nodiscard]] constexpr bool is_unspecified() const noexcept {
    return value_ == 0;
  }

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// (address, port) pair.
struct Endpoint {
  Ipv4Addr ip;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  constexpr auto operator<=>(const Endpoint&) const = default;
};

}  // namespace canal::net

template <>
struct std::hash<canal::net::Ipv4Addr> {
  std::size_t operator()(const canal::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<canal::net::Endpoint> {
  std::size_t operator()(const canal::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{e.ip.value()} << 16) ^ e.port);
  }
};
