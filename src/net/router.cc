#include "net/router.h"

#include <algorithm>

namespace canal::net {

std::size_t EcmpRouter::add_member(Endpoint ep) {
  members_.push_back(ep);
  return members_.size() - 1;
}

bool EcmpRouter::remove_member(Endpoint ep) {
  const auto it = std::find(members_.begin(), members_.end(), ep);
  if (it == members_.end()) return false;
  members_.erase(it);
  return true;
}

std::optional<Endpoint> EcmpRouter::route(const FiveTuple& flow) const {
  const auto idx = route_index(flow);
  if (!idx) return std::nullopt;
  return members_[*idx];
}

std::optional<std::size_t> EcmpRouter::route_index(const FiveTuple& flow) const {
  if (members_.empty()) return std::nullopt;
  return flow_hash(flow, seed_) % members_.size();
}

}  // namespace canal::net
