// Packets and VXLAN encapsulation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/flow.h"
#include "net/ids.h"

namespace canal::net {

/// VXLAN outer header (RFC 7348): outer 5-tuple plus the 24-bit VNI that
/// identifies the tenant network.
struct VxlanHeader {
  FiveTuple outer;
  std::uint32_t vni = 0;  // 24 bits used

  /// Bytes added on the wire: outer IPv4(20) + UDP(8) + VXLAN(8) + inner
  /// Ethernet(14).
  static constexpr std::uint32_t kOverheadBytes = 50;
};

enum class TcpFlag : std::uint8_t {
  kNone = 0,
  kSyn = 1,
  kFin = 2,
  kRst = 4,
};

/// A simulated packet. Payload is modeled by size; metadata the dataplane
/// needs (service ID stamped by the vSwitch, tenant) rides along explicitly.
struct Packet {
  FiveTuple tuple;
  std::uint32_t payload_bytes = 0;
  std::uint8_t flags = 0;  // bitwise-or of TcpFlag

  /// Outer encapsulation if the packet is currently in a VXLAN tunnel.
  std::optional<VxlanHeader> vxlan;

  /// Stamped by the vSwitch from the VNI before the outer header is
  /// stripped, so VMs above the vSwitch can still differentiate tenants
  /// with overlapping VPC address space (§4.2).
  std::optional<ServiceId> service_id;
  std::optional<TenantId> tenant_id;

  [[nodiscard]] bool has_flag(TcpFlag f) const noexcept {
    return (flags & static_cast<std::uint8_t>(f)) != 0;
  }
  void set_flag(TcpFlag f) noexcept { flags |= static_cast<std::uint8_t>(f); }

  /// Total on-wire size including any active encapsulation.
  [[nodiscard]] std::uint32_t wire_bytes() const noexcept {
    constexpr std::uint32_t kL3L4Header = 40;  // IPv4 + TCP
    return payload_bytes + kL3L4Header +
           (vxlan ? VxlanHeader::kOverheadBytes : 0);
  }
};

/// Standard Ethernet MTU used for fragmentation/MSS decisions.
constexpr std::uint32_t kDefaultMtu = 1500;

}  // namespace canal::net
