// Transport flows: 5-tuples and flow hashing.
//
// The flow hash is the basis of every stateless load-distribution decision
// in the system: the ECMP router in front of gateway replicas, the Beamer
// bucket table, and vSwitch tunnel-to-core spreading.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/address.h"

namespace canal::net {

enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17 };

/// The classic connection 5-tuple.
struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::kTcp;

  [[nodiscard]] std::string to_string() const;
  /// Tuple for the reverse direction of the same connection.
  [[nodiscard]] FiveTuple reversed() const noexcept;
  constexpr auto operator<=>(const FiveTuple&) const = default;
};

/// 64-bit avalanche mix (SplitMix64 finalizer). Stateless.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Symmetric-free flow hash over the full 5-tuple; deterministic across runs.
[[nodiscard]] std::uint64_t flow_hash(const FiveTuple& t) noexcept;

/// Flow hash with an extra key (e.g. per-router hash seed). Changing the key
/// re-shuffles flow placement — this is what breaks session consistency when
/// an ECMP group's membership changes.
[[nodiscard]] std::uint64_t flow_hash(const FiveTuple& t,
                                      std::uint64_t key) noexcept;

}  // namespace canal::net

template <>
struct std::hash<canal::net::FiveTuple> {
  std::size_t operator()(const canal::net::FiveTuple& t) const noexcept {
    return canal::net::flow_hash(t);
  }
};
