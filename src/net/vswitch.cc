#include "net/vswitch.h"

namespace canal::net {

void VSwitch::bind_vni(std::uint32_t vni, ServiceId service, TenantId tenant) {
  vni_map_[vni] = VniBinding{service, tenant};
}

void VSwitch::unbind_vni(std::uint32_t vni) { vni_map_.erase(vni); }

std::optional<VSwitch::VniBinding> VSwitch::lookup(std::uint32_t vni) const {
  const auto it = vni_map_.find(vni);
  if (it == vni_map_.end()) return std::nullopt;
  return it->second;
}

bool VSwitch::deliver_to_vm(Packet& packet) const {
  if (!packet.vxlan) return true;  // not encapsulated; pass through
  const auto binding = lookup(packet.vxlan->vni);
  if (!binding) return false;
  packet.service_id = binding->service;
  packet.tenant_id = binding->tenant;
  packet.vxlan.reset();  // strip outer header
  return true;
}

std::size_t VSwitch::core_for(const Packet& packet,
                              std::size_t num_cores) const {
  if (num_cores == 0) return 0;
  const FiveTuple& t = packet.vxlan ? packet.vxlan->outer : packet.tuple;
  return flow_hash(t) % num_cores;
}

}  // namespace canal::net
