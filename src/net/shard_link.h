// Shard-boundary links: a net::Link whose crossing is a ShardedSim mailbox
// message instead of a same-loop timer.
//
// Inside one simulation domain a link crossing is just `loop.post(transit,
// cb)`. When source and destination live in different domains, that post
// would mutate a loop another thread may be running — so the crossing
// becomes a ShardedSim::send(): parked in the source shard's outbox, sorted
// canonically at the next barrier, delivered onto the destination loop in
// its own future. A ShardChannel packages one such directed link; the
// transit math is the ordinary Link model, unchanged.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/link.h"
#include "sim/callback.h"
#include "sim/shard.h"

namespace canal::net {

/// A directed cross-domain link bound to a ShardedSim. deliver() runs `cb`
/// on the destination domain's loop one link-transit after the source
/// domain's current time. The link's propagation latency must be >= the
/// sim's lookahead (ShardedSim::send enforces it; k8s::cross_shard_lookahead
/// picks a lookahead that makes every cross-shard link qualify).
class ShardChannel {
 public:
  ShardChannel(sim::ShardedSim& sim, std::size_t src_domain,
               std::size_t dst_domain, Link link)
      : sim_(sim), src_(src_domain), dst_(dst_domain), link_(link) {}

  [[nodiscard]] const Link& link() const noexcept { return link_; }
  [[nodiscard]] std::size_t src_domain() const noexcept { return src_; }
  [[nodiscard]] std::size_t dst_domain() const noexcept { return dst_; }

  /// Ships `bytes` across the link; `cb` fires on the destination loop at
  /// source-now + transit(bytes). Call only from a callback running on the
  /// source domain's loop (send()'s thread-ownership rule).
  void deliver(std::uint64_t bytes, sim::Callback cb) {
    sim_.send(src_, dst_, link_.transit(bytes), std::move(cb));
  }

 private:
  sim::ShardedSim& sim_;
  std::size_t src_;
  std::size_t dst_;
  Link link_;
};

}  // namespace canal::net
