// Virtual switch model.
//
// The vSwitch sits under every VM. For Canal's multi-tenant gateway it
// performs the key trick of §4.2: before stripping the outer VXLAN header it
// maps the 24-bit VNI to a globally unique service ID and stamps it on the
// inner packet, so VMs above the vSwitch can differentiate tenants whose
// VPC address spaces overlap. It also hashes incoming tunnels across the
// VM's cores (used by session aggregation, §4.4).
#pragma once

#include <cstdint>
#include <optional>

#include "net/ids.h"
#include "net/packet.h"
#include "sim/flat_map.h"

namespace canal::net {

class VSwitch {
 public:
  struct VniBinding {
    ServiceId service;
    TenantId tenant;
  };

  /// Registers the VNI → (service, tenant) mapping for a tenant network.
  void bind_vni(std::uint32_t vni, ServiceId service, TenantId tenant);
  void unbind_vni(std::uint32_t vni);

  [[nodiscard]] std::optional<VniBinding> lookup(std::uint32_t vni) const;

  /// Delivers a packet up to the VM: maps VNI → service ID, stamps it on the
  /// inner header, strips the outer VXLAN header. Returns false (packet
  /// dropped) for unknown VNIs.
  bool deliver_to_vm(Packet& packet) const;

  /// Picks the VM core for an encapsulated packet by hashing the outer
  /// tuple — different outer source ports land on different cores.
  [[nodiscard]] std::size_t core_for(const Packet& packet,
                                     std::size_t num_cores) const;

  [[nodiscard]] std::size_t bindings() const noexcept { return vni_map_.size(); }

 private:
  sim::FlatHashMap<std::uint32_t, VniBinding> vni_map_;
};

}  // namespace canal::net
