#include "fuzz/oracle.h"

#include <string_view>
#include <utility>

namespace canal::fuzz {
namespace {

constexpr std::string_view kL7RoutingNoMesh = "l7-routing-nomesh";
constexpr std::string_view kWeightedSplit = "weighted-split";
constexpr std::string_view kFaultWindow = "fault-window";
constexpr std::string_view kResilienceWindow = "resilience-window";
constexpr std::string_view kConfigPropagationWindow =
    "config-propagation-window";

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

/// True when the request probes the error matrix (null client / unknown
/// service): those must fail identically on every plane, no exemptions.
[[nodiscard]] bool is_error_probe(const RequestSpec& rs) {
  return rs.null_client || rs.unknown_service;
}

[[nodiscard]] bool matches_direct_rule(const ScenarioSpec& spec,
                                       const RequestSpec& rs) {
  if (is_error_probe(rs)) return false;
  for (const auto& d : spec.direct_responses) {
    if (d.service == rs.dst_service && rs.path.starts_with(d.path_prefix)) {
      return true;
    }
  }
  // A pushed config epoch installs a direct-response rule on
  // kPushedConfigPrefix. Once the push is issued (ev.at <= rs.at — issue
  // times are spec values, identical on every plane), matching requests
  // get the same L7-vs-L4 treatment as static direct rules: NoMesh can't
  // honour the pushed table, so the reference plane switches to Istio.
  const std::size_t services = spec.service_count();
  if (services == 0) return false;
  for (const auto& ev : spec.events) {
    if (ev.kind != EventKind::kPushConfig) continue;
    if (ev.service % services != rs.dst_service) continue;
    if (ev.at <= rs.at && rs.path.starts_with(kPushedConfigPrefix)) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool matches_split_rule(const ScenarioSpec& spec,
                                      const RequestSpec& rs) {
  if (is_error_probe(rs) || matches_direct_rule(spec, rs)) return false;
  for (const auto& sp : spec.splits) {
    if (sp.service == rs.dst_service && rs.path.starts_with(sp.path_prefix)) {
      return true;
    }
  }
  return false;
}

/// True when any plane's observation of request `i` overlaps an active
/// fault window. The union over planes matters: a fault that delays the
/// request on one plane but not another is still a racing fault.
[[nodiscard]] bool overlaps_fault(const ScenarioSpec& spec,
                                  const std::array<PlaneResult, 5>& results,
                                  std::size_t i) {
  for (const auto& ev : spec.events) {
    if (!ev.is_fault()) continue;
    for (const auto& plane : results) {
      const RequestOutcome& out = plane.outcomes[i];
      if (out.issued_at < ev.at + ev.duration && ev.at <= out.completed_at) {
        return true;
      }
    }
  }
  return false;
}

/// True when any plane's observation of request `i` overlaps any plane's
/// config-propagation window. Both unions matter: convergence is slower
/// on proxy-heavy planes, and a request delayed on one plane can reach
/// into a window another plane has already closed.
[[nodiscard]] bool overlaps_config_window(
    const std::array<PlaneResult, 5>& results, std::size_t i) {
  for (const auto& plane : results) {
    for (const auto& window : plane.config_windows) {
      for (const auto& other : results) {
        const RequestOutcome& out = other.outcomes[i];
        if (out.issued_at <= window.second && window.first <= out.completed_at) {
          return true;
        }
      }
    }
  }
  return false;
}

void add_differential(ScenarioReport& report, std::size_t plane_index,
                      std::size_t request, std::string detail) {
  Violation v;
  v.kind = Violation::Kind::kDifferential;
  v.plane = std::string(kPlanes[plane_index]);
  v.request = static_cast<int>(request);
  v.detail = std::move(detail);
  report.violations.push_back(std::move(v));
}

void compare_request(const ScenarioSpec& spec,
                     const std::array<PlaneResult, 5>& results, std::size_t i,
                     const Allowlist& allowlist, ScenarioReport& report) {
  for (const auto& plane : results) {
    if (!plane.outcomes[i].completed) return;  // conservation already flagged
  }

  // Per-tenant rate-limit decisions are compared strictly and FIRST —
  // before any window exemption. The token bucket is consulted at
  // admission and consumed once per logical request, so its state is a
  // pure function of the spec's arrival schedule, identical on every
  // plane regardless of faults or breaker state.
  const RequestOutcome& rl_ref = results[kNoMesh].outcomes[i];
  for (std::size_t p = 1; p < results.size(); ++p) {
    const RequestOutcome& out = results[p].outcomes[i];
    if (out.rate_limited != rl_ref.rate_limited) {
      add_differential(
          report, p, i,
          std::string("rate-limit decision ") +
              (out.rate_limited ? "limited" : "admitted") + " vs " +
              (rl_ref.rate_limited ? "limited" : "admitted") + " on " +
              std::string(kPlanes[kNoMesh]));
    }
  }

  if (allowlist.fault_window && overlaps_fault(spec, results, i)) return;
  if (allowlist.config_propagation_window &&
      overlaps_config_window(results, i)) {
    return;
  }
  if (allowlist.resilience_window) {
    for (const auto& plane : results) {
      // A breaker/outlier transition raced this request somewhere: its
      // status/attempts legitimately depend on plane-specific completion
      // timing, so skip the differential comparison (the strict
      // rate-limit check above already ran).
      if (plane.outcomes[i].resilience_affected) return;
    }
  }

  const RequestSpec& rs = spec.requests[i];
  const bool direct = matches_direct_rule(spec, rs);
  const bool split = matches_split_rule(spec, rs);
  const bool skip_nomesh = direct && allowlist.l7_routing_nomesh;
  const bool skip_served = split && allowlist.weighted_split;

  const std::size_t reference = skip_nomesh ? kIstio : kNoMesh;
  const RequestOutcome& ref = results[reference].outcomes[i];
  for (std::size_t p = 0; p < results.size(); ++p) {
    if (p == reference) continue;
    if (p == kNoMesh && skip_nomesh) continue;
    const RequestOutcome& out = results[p].outcomes[i];
    if (out.status != ref.status) {
      add_differential(report, p, i,
                       "status " + std::to_string(out.status) + " vs " +
                           std::to_string(ref.status) + " on " +
                           std::string(kPlanes[reference]));
    }
    if (!skip_served && out.served_service != ref.served_service) {
      add_differential(report, p, i,
                       "served by service " +
                           std::to_string(out.served_service) + " vs " +
                           std::to_string(ref.served_service) + " on " +
                           std::string(kPlanes[reference]));
    }
    if (out.attempts != ref.attempts) {
      add_differential(report, p, i,
                       "took " + std::to_string(out.attempts) +
                           " attempts vs " + std::to_string(ref.attempts) +
                           " on " + std::string(kPlanes[reference]));
    }
  }
  // No active fault -> nothing may be retried or timed out, anywhere.
  for (std::size_t p = 0; p < results.size(); ++p) {
    const RequestOutcome& out = results[p].outcomes[i];
    if (out.attempts > 1 || out.timed_out) {
      add_differential(report, p, i,
                       "retried without an active fault (attempts=" +
                           std::to_string(out.attempts) +
                           ", timed_out=" + (out.timed_out ? "true" : "false") +
                           ")");
    }
  }
}

}  // namespace

std::string Allowlist::to_string() const {
  std::string out;
  const auto add = [&out](std::string_view name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (l7_routing_nomesh) add(kL7RoutingNoMesh);
  if (weighted_split) add(kWeightedSplit);
  if (fault_window) add(kFaultWindow);
  if (resilience_window) add(kResilienceWindow);
  if (config_propagation_window) add(kConfigPropagationWindow);
  return out;
}

std::optional<Allowlist> Allowlist::parse(const std::string& s) {
  Allowlist list;
  list.l7_routing_nomesh = false;
  list.weighted_split = false;
  list.fault_window = false;
  list.resilience_window = false;
  list.config_propagation_window = false;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string_view name(s.data() + pos, comma - pos);
    if (name == kL7RoutingNoMesh) {
      list.l7_routing_nomesh = true;
    } else if (name == kWeightedSplit) {
      list.weighted_split = true;
    } else if (name == kFaultWindow) {
      list.fault_window = true;
    } else if (name == kResilienceWindow) {
      list.resilience_window = true;
    } else if (name == kConfigPropagationWindow) {
      list.config_propagation_window = true;
    } else {
      return std::nullopt;
    }
    pos = comma + 1;
  }
  return list;
}

std::string ScenarioReport::to_json() const {
  std::string out = "{\"index\":" + std::to_string(index) +
                    ",\"seed\":" + std::to_string(seed) + ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i != 0) out += ',';
    out += "{\"kind\":\"";
    out += v.kind == Violation::Kind::kInvariant ? "invariant" : "differential";
    out += "\",\"plane\":\"";
    append_json_escaped(out, v.plane);
    out += "\",\"request\":" + std::to_string(v.request) + ",\"detail\":\"";
    append_json_escaped(out, v.detail);
    out += "\"}";
  }
  out += "]}";
  return out;
}

ScenarioReport check_scenario(const ScenarioSpec& spec,
                              const std::array<PlaneResult, 5>& results,
                              const Allowlist& allowlist) {
  ScenarioReport report;
  report.index = spec.index;
  report.seed = spec.seed;
  for (std::size_t p = 0; p < results.size(); ++p) {
    for (const std::string& detail : results[p].invariant_violations) {
      Violation v;
      v.kind = Violation::Kind::kInvariant;
      v.plane = std::string(kPlanes[p]);
      v.detail = detail;
      report.violations.push_back(std::move(v));
    }
  }
  for (std::size_t i = 0; i < spec.requests.size(); ++i) {
    compare_request(spec, results, i, allowlist, report);
  }
  return report;
}

}  // namespace canal::fuzz
