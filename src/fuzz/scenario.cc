#include "fuzz/scenario.h"

#include <sstream>

#include "sim/rng.h"

namespace canal::fuzz {
namespace {

/// Stateless (seed, index) mixer so scenario N is independent of how many
/// draws scenario N-1 consumed — a prerequisite for running scenarios on
/// any thread in any order.
std::uint64_t scenario_seed(std::uint64_t seed, std::uint32_t index) {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  return sim::splitmix64(state);
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed, std::uint32_t index) {
  sim::Rng rng(scenario_seed(seed, index));
  ScenarioSpec spec;
  spec.seed = scenario_seed(seed, index) | 1;  // plane RNG seed, nonzero
  spec.index = index;

  // --- topology -------------------------------------------------------
  spec.nodes = static_cast<std::uint32_t>(rng.uniform_int(2, 3));
  const auto services = static_cast<std::uint32_t>(rng.uniform_int(2, 4));
  for (std::uint32_t s = 0; s < services; ++s) {
    spec.pods_per_service.push_back(
        static_cast<std::uint32_t>(rng.uniform_int(1, 3)));
  }
  spec.app_service_time = sim::microseconds(
      static_cast<double>(rng.uniform_int(200, 1500)));

  // --- L7 traffic control --------------------------------------------
  // At most one custom-routed service per scenario keeps the per-plane
  // installation story simple (see executor.cc); the canary target is a
  // different service with only default routes.
  const auto routed = static_cast<std::uint32_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(services) - 1));
  if (rng.chance(0.5) && services >= 2) {
    SplitSpec split;
    split.service = routed;
    split.canary_service = (routed + 1) % services;
    split.primary_weight = static_cast<std::uint32_t>(rng.uniform_int(1, 99));
    split.canary_weight = 100 - split.primary_weight;
    spec.splits.push_back(split);
  }
  if (rng.chance(0.35)) {
    DirectResponseSpec direct;
    direct.service = routed;
    // Mix of error and success direct responses: 2xx/3xx direct responses
    // complete at the proxy with no upstream endpoint, which is exactly
    // the path the fuzzer caught crashing every dataplane (see
    // tests/test_fuzz_regressions.cc).
    static constexpr int kStatuses[] = {403, 429, 204, 302};
    direct.status = kStatuses[rng.uniform_int(0, 3)];
    spec.direct_responses.push_back(direct);
  }

  // --- request program ------------------------------------------------
  const auto request_count = static_cast<std::uint32_t>(rng.uniform_int(8, 32));
  const sim::TimePoint horizon = sim::milliseconds(150);
  for (std::uint32_t i = 0; i < request_count; ++i) {
    RequestSpec req;
    // Index-derived (no RNG draw): keeps the generator's draw sequence —
    // and with it every historical campaign scenario — unchanged.
    req.tenant = 1 + (i % 3);
    req.at = rng.uniform_int(0, horizon);
    req.client_service =
        static_cast<std::uint32_t>(rng.uniform_int(0, services - 1));
    req.client_pod = static_cast<std::uint32_t>(rng.uniform_int(
        0, spec.pods_per_service[req.client_service] - 1));
    req.dst_service =
        static_cast<std::uint32_t>(rng.uniform_int(0, services - 1));
    const double shape = rng.uniform();
    if (shape < 0.04) {
      req.null_client = true;
    } else if (shape < 0.08) {
      req.unknown_service = true;
    } else if (shape < 0.30 && !spec.splits.empty()) {
      req.dst_service = spec.splits.front().service;
      req.path = spec.splits.front().path_prefix + "/item";
    } else if (shape < 0.42 && !spec.direct_responses.empty()) {
      req.dst_service = spec.direct_responses.front().service;
      req.path = spec.direct_responses.front().path_prefix;
    } else {
      req.path = "/api/items";
    }
    spec.requests.push_back(req);
  }

  // --- event program --------------------------------------------------
  const auto event_count = static_cast<std::uint32_t>(rng.uniform_int(0, 4));
  std::uint32_t pods_added = 0;
  for (std::uint32_t i = 0; i < event_count; ++i) {
    EventSpec ev;
    ev.at = rng.uniform_int(sim::milliseconds(5), sim::milliseconds(120));
    switch (rng.uniform_int(0, 7)) {
      case 0: {
        ev.kind = EventKind::kPodKill;
        ev.service =
            static_cast<std::uint32_t>(rng.uniform_int(0, services - 1));
        ev.pod = static_cast<std::uint32_t>(
            rng.uniform_int(0, spec.pods_per_service[ev.service] - 1));
        ev.duration = rng.uniform_int(sim::milliseconds(20),
                                      sim::milliseconds(60));
        break;
      }
      case 1:
        ev.kind = EventKind::kLinkLoss;
        // Loss is always 1.0: every plane draws losses from its own RNG,
        // so fractional loss would diverge by chance rather than by bug.
        ev.duration = rng.uniform_int(sim::milliseconds(10),
                                      sim::milliseconds(40));
        break;
      case 2:
        ev.kind = EventKind::kLatencySpike;
        ev.duration = rng.uniform_int(sim::milliseconds(10),
                                      sim::milliseconds(50));
        // Small enough that per-try timeouts never fire on clean paths.
        ev.extra_latency =
            rng.uniform_int(sim::microseconds(100), sim::milliseconds(3));
        break;
      case 3:
        ev.kind = EventKind::kReplicaCrash;
        ev.backend = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
        ev.replica = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
        ev.duration = rng.uniform_int(sim::milliseconds(15),
                                      sim::milliseconds(50));
        break;
      case 4:
        // Bounded so ENI capacity (10/node) can never be exhausted.
        if (pods_added >= 2) continue;
        ++pods_added;
        ev.kind = EventKind::kAddPod;
        ev.service =
            static_cast<std::uint32_t>(rng.uniform_int(0, services - 1));
        break;
      case 5:
        ev.kind = EventKind::kExtendService;
        ev.service =
            static_cast<std::uint32_t>(rng.uniform_int(0, services - 1));
        break;
      case 6:
        ev.kind = EventKind::kRetractService;
        ev.service =
            static_cast<std::uint32_t>(rng.uniform_int(0, services - 1));
        break;
      default:
        ev.kind = EventKind::kDrainReplica;
        ev.backend = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
        ev.replica = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
        break;
    }
    spec.events.push_back(ev);
  }
  return spec;
}

ResilienceSpec derive_resilience(std::uint64_t seed, std::uint32_t index) {
  // Salt keeps this stream disjoint from generate_scenario's: arming
  // resilience must not perturb the scenario program itself.
  std::uint64_t salted = scenario_seed(seed, index) ^ 0xC2B2AE3D27D4EB4FULL;
  sim::Rng rng(sim::splitmix64(salted));
  ResilienceSpec spec;
  spec.enabled = true;
  spec.breaker_consecutive_errors =
      static_cast<std::uint32_t>(rng.uniform_int(2, 6));
  spec.breaker_ejection_time =
      rng.uniform_int(sim::milliseconds(10), sim::milliseconds(60));
  spec.outlier_consecutive_errors =
      static_cast<std::uint32_t>(rng.uniform_int(2, 6));
  spec.outlier_ejection_time =
      rng.uniform_int(sim::milliseconds(10), sim::milliseconds(60));
  spec.max_ejection_percent =
      static_cast<std::uint32_t>(rng.uniform_int(34, 67));
  spec.rate_limit = rng.chance(0.7);
  spec.rate_tokens_per_second =
      static_cast<double>(rng.uniform_int(50, 400));
  spec.rate_burst = static_cast<double>(rng.uniform_int(2, 12));
  return spec;
}

std::vector<EventSpec> derive_control_plane(std::uint64_t seed,
                                            std::uint32_t index,
                                            std::size_t service_count) {
  // A third disjoint salted stream (cf. derive_resilience): arming the
  // control plane must not perturb the scenario program or the
  // resilience config of any historical campaign.
  std::uint64_t salted = scenario_seed(seed, index) ^ 0xA0761D6478BD642FULL;
  sim::Rng rng(sim::splitmix64(salted));
  std::vector<EventSpec> events;
  const auto services =
      static_cast<std::int64_t>(service_count == 0 ? 1 : service_count);

  // Always at least one config push: the whole point of arming.
  EventSpec push;
  push.kind = EventKind::kPushConfig;
  push.at = rng.uniform_int(sim::milliseconds(20), sim::milliseconds(80));
  push.service = static_cast<std::uint32_t>(rng.uniform_int(0, services - 1));
  // Unusual-but-success statuses, so a pushed rule is distinguishable both
  // from the app's 200s and from every fault/direct-response status.
  static constexpr int kConfigStatuses[] = {226, 240};
  push.config_status = kConfigStatuses[rng.uniform_int(0, 1)];
  events.push_back(push);

  if (rng.chance(0.5)) {
    EventSpec rotate;
    rotate.kind = EventKind::kRotateCerts;
    rotate.at = rng.uniform_int(sim::milliseconds(5), sim::milliseconds(60));
    // duration doubles as the per-identity submission stagger.
    rotate.duration =
        rng.uniform_int(sim::microseconds(50), sim::microseconds(200));
    events.push_back(rotate);
  }
  return events;
}

namespace {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kPodKill: return "kPodKill";
    case EventKind::kLinkLoss: return "kLinkLoss";
    case EventKind::kLatencySpike: return "kLatencySpike";
    case EventKind::kReplicaCrash: return "kReplicaCrash";
    case EventKind::kAddPod: return "kAddPod";
    case EventKind::kExtendService: return "kExtendService";
    case EventKind::kRetractService: return "kRetractService";
    case EventKind::kDrainReplica: return "kDrainReplica";
    case EventKind::kPushConfig: return "kPushConfig";
    case EventKind::kRotateCerts: return "kRotateCerts";
  }
  return "kPodKill";
}

}  // namespace

std::string to_cpp_snippet(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "// Minimized repro emitted by fuzz_mesh (campaign seed unknown to"
         " the spec;\n// rebuild is exact from the fields below)."
         " Paste into tests/test_fuzz_regressions.cc.\n";
  out << "TEST(FuzzRegression, Scenario" << spec.index << "Seed" << spec.seed
      << ") {\n";
  out << "  fuzz::ScenarioSpec spec;\n";
  out << "  spec.seed = " << spec.seed << "ULL;\n";
  out << "  spec.index = " << spec.index << ";\n";
  out << "  spec.nodes = " << spec.nodes << ";\n";
  out << "  spec.node_cores = " << spec.node_cores << ";\n";
  out << "  spec.pods_per_service = {";
  for (std::size_t i = 0; i < spec.pods_per_service.size(); ++i) {
    out << (i != 0 ? ", " : "") << spec.pods_per_service[i];
  }
  out << "};\n";
  out << "  spec.app_service_time = " << spec.app_service_time << ";\n";
  for (const auto& split : spec.splits) {
    out << "  {\n    fuzz::SplitSpec split;\n"
        << "    split.service = " << split.service << ";\n"
        << "    split.canary_service = " << split.canary_service << ";\n"
        << "    split.primary_weight = " << split.primary_weight << ";\n"
        << "    split.canary_weight = " << split.canary_weight << ";\n"
        << "    split.path_prefix = \"" << split.path_prefix << "\";\n"
        << "    spec.splits.push_back(split);\n  }\n";
  }
  for (const auto& direct : spec.direct_responses) {
    out << "  {\n    fuzz::DirectResponseSpec direct;\n"
        << "    direct.service = " << direct.service << ";\n"
        << "    direct.status = " << direct.status << ";\n"
        << "    direct.path_prefix = \"" << direct.path_prefix << "\";\n"
        << "    spec.direct_responses.push_back(direct);\n  }\n";
  }
  for (const auto& req : spec.requests) {
    out << "  {\n    fuzz::RequestSpec req;\n"
        << "    req.at = " << req.at << ";\n"
        << "    req.client_service = " << req.client_service << ";\n"
        << "    req.client_pod = " << req.client_pod << ";\n"
        << "    req.dst_service = " << req.dst_service << ";\n"
        << "    req.tenant = " << req.tenant << ";\n"
        << "    req.path = \"" << req.path << "\";\n";
    if (req.null_client) out << "    req.null_client = true;\n";
    if (req.unknown_service) out << "    req.unknown_service = true;\n";
    out << "    spec.requests.push_back(req);\n  }\n";
  }
  for (const auto& ev : spec.events) {
    out << "  {\n    fuzz::EventSpec ev;\n"
        << "    ev.kind = fuzz::EventKind::" << event_kind_name(ev.kind)
        << ";\n"
        << "    ev.at = " << ev.at << ";\n"
        << "    ev.duration = " << ev.duration << ";\n"
        << "    ev.service = " << ev.service << ";\n"
        << "    ev.pod = " << ev.pod << ";\n"
        << "    ev.backend = " << ev.backend << ";\n"
        << "    ev.replica = " << ev.replica << ";\n"
        << "    ev.extra_latency = " << ev.extra_latency << ";\n";
    if (ev.kind == EventKind::kPushConfig) {
      out << "    ev.config_status = " << ev.config_status << ";\n";
    }
    out << "    spec.events.push_back(ev);\n  }\n";
  }
  if (spec.resilience.enabled) {
    const auto& r = spec.resilience;
    out << "  spec.resilience.enabled = true;\n"
        << "  spec.resilience.breaker_consecutive_errors = "
        << r.breaker_consecutive_errors << ";\n"
        << "  spec.resilience.breaker_ejection_time = "
        << r.breaker_ejection_time << ";\n"
        << "  spec.resilience.outlier_consecutive_errors = "
        << r.outlier_consecutive_errors << ";\n"
        << "  spec.resilience.outlier_ejection_time = "
        << r.outlier_ejection_time << ";\n"
        << "  spec.resilience.max_ejection_percent = "
        << r.max_ejection_percent << ";\n";
    if (r.rate_limit) {
      out << "  spec.resilience.rate_limit = true;\n"
          << "  spec.resilience.rate_tokens_per_second = "
          << r.rate_tokens_per_second << ";\n"
          << "  spec.resilience.rate_burst = " << r.rate_burst << ";\n";
    }
  }
  out << "  const auto results = fuzz::run_all_planes(spec);\n";
  out << "  const auto report =\n"
         "      fuzz::check_scenario(spec, results, fuzz::Allowlist{});\n";
  out << "  EXPECT_TRUE(report.violations.empty()) << report.to_json();\n";
  out << "}\n";
  return out.str();
}

}  // namespace canal::fuzz
