// Executes one ScenarioSpec against one (or all) of the five dataplanes.
//
// Every plane gets a fresh sim::EventLoop and k8s::Cluster rebuilt from
// the spec in identical order, so object identifiers (pods, services,
// backends) line up across planes and per-request outcomes are directly
// comparable. Single-run invariants (request conservation, trace tiling,
// metrics consistency, session drain, clock monotonicity) are checked
// here, where the live objects are still reachable; cross-plane
// differential checks live in fuzz::check_scenario (oracle.h).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fuzz/scenario.h"
#include "sim/time.h"
#include "telemetry/trace_export.h"

namespace canal::fuzz {

/// Head-based trace-sampling rate applied per tenant on every traced
/// plane. The executor asserts the sampled count matches the sampler's
/// closed form exactly (see telemetry::TraceSampler).
inline constexpr double kTraceSampleRate = 0.25;

/// Plane order is fixed: indexes into kPlanes appear in reports, in the
/// allowlist logic, and in ScenarioSpec::planted_plane.
inline constexpr std::array<std::string_view, 5> kPlanes = {
    "no-mesh", "istio", "ambient", "canal", "canal-proxyless"};
inline constexpr std::size_t kNoMesh = 0;
inline constexpr std::size_t kIstio = 1;
inline constexpr std::size_t kAmbient = 2;
inline constexpr std::size_t kCanal = 3;
inline constexpr std::size_t kProxyless = 4;

/// Semantic outcome of one request on one plane.
struct RequestOutcome {
  bool completed = false;
  int status = 0;
  /// Build-order index of the service that served the request (derived
  /// from the serving pod — pods differ across planes by LB cursor, the
  /// service must not); -1 when no endpoint served it.
  int served_service = -1;
  std::uint32_t attempts = 0;
  bool timed_out = false;
  sim::TimePoint issued_at = 0;
  sim::TimePoint completed_at = 0;
  bool traced = false;
  /// Head-based sampling decision made when the request was issued.
  bool sampled = false;
  /// Rejected at admission by the per-tenant token bucket (429,
  /// attempts == 0). Token-bucket decisions depend only on the logical
  /// arrival schedule — identical on every plane — so the oracle compares
  /// this flag strictly, even inside fault windows.
  bool rate_limited = false;
  /// The request raced a circuit-breaker or outlier-ejection state
  /// transition (or was fast-failed/cut short by one). Those transitions
  /// fire at plane-dependent completion times, so flagged requests are
  /// exempt from differential comparison under the resilience-window
  /// allowlist entry (DESIGN.md §11).
  bool resilience_affected = false;
};

/// One plane's execution of a scenario.
struct PlaneResult {
  std::string_view plane;
  std::vector<RequestOutcome> outcomes;  ///< aligned with spec.requests
  /// Sampled traces (head-based, kTraceSampleRate per tenant), in
  /// completion order — exportable as Chrome trace-event JSON.
  telemetry::TraceExport traces;
  /// Human-readable single-run invariant violations (empty = clean).
  std::vector<std::string> invariant_violations;
  /// One [push issued, epoch converged] interval per kPushConfig event,
  /// in event order. Convergence times are plane-dependent (istio pushes
  /// O(pods) full configs, canal O(backends)), so the oracle takes the
  /// union across planes as the config-propagation-window exemption.
  std::vector<std::pair<sim::TimePoint, sim::TimePoint>> config_windows;
  /// Control-plane accounting for the convergence tests.
  std::uint64_t config_applies = 0;
  std::uint64_t config_superseded = 0;
  std::uint64_t max_epoch_skew = 0;
  std::uint64_t certs_rotated = 0;
  std::uint64_t rotation_batches = 0;
};

[[nodiscard]] PlaneResult run_plane(const ScenarioSpec& spec,
                                    std::size_t plane_index);

/// Runs the spec on all five planes (serially, each on its own loop).
[[nodiscard]] std::array<PlaneResult, 5> run_all_planes(
    const ScenarioSpec& spec);

}  // namespace canal::fuzz
