// Differential oracle: compares per-request outcomes across planes and
// folds in the executor's single-run invariant findings.
//
// Divergence between dataplanes is only a bug when the planes are
// supposed to agree. Four classes of disagreement are *documented*
// architecture differences, controlled by the Allowlist:
//
//   l7-routing-nomesh  NoMesh is L4-only and cannot honour direct-response
//                      rules, so its status/served-service on requests
//                      matching a direct rule is exempt.
//   weighted-split     Weighted canary splits draw from each plane's own
//                      RNG stream, so *which* service serves a split
//                      request may differ; the status must still agree.
//   fault-window       Requests whose lifetime overlaps an active fault
//                      (pod kill, link loss, replica crash) race the fault
//                      differently per plane; they are exempt from
//                      differential comparison entirely.
//   resilience-window  Circuit-breaker and outlier-ejection transitions
//                      fire at completion times, which differ by plane, so
//                      requests flagged resilience_affected on any plane
//                      race a state transition and are exempt from
//                      differential comparison. Per-tenant rate-limit
//                      decisions are NOT covered: they depend only on the
//                      plane-invariant arrival schedule and stay strictly
//                      compared even here (DESIGN.md §13).
//   config-propagation-window
//                      A pushed config epoch (kPushConfig) reaches each
//                      proxy at its own delivery time, and convergence
//                      takes longer on planes with more proxies (Istio:
//                      O(pods) full configs; Canal: O(backends)). Requests
//                      whose lifetime overlaps any plane's
//                      [push, converged] window race the rollout and are
//                      exempt. Outside the windows the planes must agree
//                      on the pushed table's behaviour — a proxy serving a
//                      stale route after convergence is a real bug
//                      (DESIGN.md §16).
//
// Everything else must match exactly: status, serving service, attempt
// count (and exactly one attempt when no fault was active).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/executor.h"
#include "fuzz/scenario.h"

namespace canal::fuzz {

/// Documented-divergence toggles. All enabled by default; tests disable
/// individual entries to prove each one is load-bearing.
struct Allowlist {
  bool l7_routing_nomesh = true;
  bool weighted_split = true;
  bool fault_window = true;
  bool resilience_window = true;
  bool config_propagation_window = true;

  /// Comma-separated kebab-case names of the *enabled* entries, e.g.
  /// "l7-routing-nomesh,fault-window". Empty when all are disabled.
  [[nodiscard]] std::string to_string() const;
  /// Inverse of to_string(). Unknown names -> nullopt.
  [[nodiscard]] static std::optional<Allowlist> parse(const std::string& s);
};

struct Violation {
  enum class Kind : std::uint8_t { kInvariant, kDifferential };
  Kind kind = Kind::kInvariant;
  /// Plane the violation was observed on (for differential violations,
  /// the plane that disagrees with the reference plane).
  std::string plane;
  int request = -1;  ///< request index, -1 for whole-run invariants
  std::string detail;
};

/// Oracle verdict for one scenario. Serializes deterministically: same
/// spec + same results -> byte-identical JSON, regardless of thread
/// interleaving in the campaign driver.
struct ScenarioReport {
  std::uint32_t index = 0;
  std::uint64_t seed = 0;
  std::vector<Violation> violations;

  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string to_json() const;
};

/// Runs the differential comparison over `results` (one PlaneResult per
/// entry of kPlanes, aligned with spec.requests) and returns the combined
/// report including each plane's single-run invariant violations.
[[nodiscard]] ScenarioReport check_scenario(
    const ScenarioSpec& spec, const std::array<PlaneResult, 5>& results,
    const Allowlist& allowlist);

}  // namespace canal::fuzz
