#include "fuzz/executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "canal/canal_mesh.h"
#include "canal/fault_injector.h"
#include "canal/gateway.h"
#include "canal/proxyless.h"
#include "crypto/accelerator.h"
#include "crypto/cert.h"
#include "crypto/keyserver.h"
#include "crypto/rotation.h"
#include "http/route.h"
#include "k8s/cluster.h"
#include "k8s/objects.h"
#include "k8s/propagation.h"
#include "mesh/ambient.h"
#include "mesh/dataplane.h"
#include "mesh/istio.h"
#include "net/ids.h"
#include "proxy/resilience.h"
#include "sim/event_loop.h"
#include "sim/fault.h"
#include "sim/rng.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"

namespace canal::fuzz {
namespace {

/// Destination used by RequestSpec.unknown_service probes. Service ids are
/// allocated sequentially from 1 and scenarios stay tiny, so this id never
/// exists.
constexpr auto kUnknownService = static_cast<net::ServiceId>(9999);

/// One plane's fully built simulated world. Every plane gets its own loop
/// and cluster so CPU contention and RNG draws cannot couple planes; the
/// build order below is identical for all planes, which keeps pod/service/
/// backend identifiers aligned across them.
struct World {
  World(const ScenarioSpec& s, std::size_t plane_idx)
      : spec(s),
        plane_index(plane_idx),
        cluster(loop, static_cast<net::TenantId>(1), sim::Rng(s.seed)),
        retry_rng(s.seed + 97),
        rotation_rng(s.seed + 11),
        sampler(kTraceSampleRate, s.seed) {}

  const ScenarioSpec& spec;
  std::size_t plane_index;
  sim::EventLoop loop;
  k8s::Cluster cluster;
  std::vector<k8s::Service*> services;
  /// Address must stay stable: every NetworkProfile points at this plan
  /// before it is populated.
  sim::FaultPlan plan;

  std::unique_ptr<mesh::NoMesh> nomesh;
  std::unique_ptr<mesh::IstioMesh> istio;
  std::unique_ptr<mesh::AmbientMesh> ambient;
  std::unique_ptr<core::MeshGateway> gateway;
  std::unique_ptr<crypto::KeyServer> key_server;
  std::unique_ptr<core::CanalMesh> canal;
  std::unique_ptr<core::ProxylessMesh> proxyless;
  std::unique_ptr<core::FaultInjector> injector;

  mesh::MeshDataplane* plane = nullptr;
  k8s::AppProfile app_profile;
  mesh::RetryPolicy retry_policy;
  sim::Rng retry_rng;

  /// Modeled control plane, built lazily on the first kPushConfig /
  /// kRotateCerts event. Dedicated southbound channel + controller cores
  /// + crypto accelerator, so control-plane work never contends with the
  /// dataplane's CPU and the ops events stay semantically transparent.
  std::unique_ptr<k8s::ConfigPropagation> propagation;
  /// Cert distribution rides its own propagation instance (own epoch
  /// space + southbound stream, the SDS/RDS split): a cert epoch racing
  /// ahead of an in-flight route epoch must never supersede it.
  std::unique_ptr<k8s::ConfigPropagation> cert_propagation;
  std::unique_ptr<sim::CpuSet> rotation_cpu;
  std::unique_ptr<crypto::AsymmetricAccelerator> rotation_accel;
  std::unique_ptr<crypto::CertificateAuthority> rotation_ca;
  std::vector<std::unique_ptr<crypto::CertRotationWave>> rotation_waves;
  sim::Rng rotation_rng;

  telemetry::MetricsRegistry registry;
  /// Routes traces to per-tenant recorders (tenant label on every metric).
  telemetry::TenantRecorderSet recorders;
  telemetry::TraceSampler sampler;
  /// Per-tenant expected registry state, accumulated in record order so
  /// `sum` undergoes the exact same IEEE additions as the histogram's.
  struct ExpectedTenant {
    std::uint64_t count = 0;
    double latency_sum_us = 0.0;
    std::uint64_t errors = 0;
  };
  std::map<net::TenantId, ExpectedTenant> expected;
  std::unordered_map<net::ServiceId, int, net::IdHash> service_index;
  sim::TimePoint last_completion = 0;

  [[nodiscard]] bool traced() const noexcept {
    return plane_index != kProxyless;
  }
  [[nodiscard]] bool has_gateway() const noexcept {
    return gateway != nullptr;
  }
};

void violate(PlaneResult& result, std::string detail) {
  result.invariant_violations.push_back(std::move(detail));
}

// --- world construction ---------------------------------------------------

void build_topology(World& w) {
  for (std::uint32_t n = 0; n < w.spec.nodes; ++n) {
    w.cluster.add_node(static_cast<net::AzId>(0), w.spec.node_cores);
  }
  w.app_profile.fast_fraction = 1.0;
  w.app_profile.fast_service_mean = w.spec.app_service_time;
  w.app_profile.sigma = 0.05;
  for (std::size_t s = 0; s < w.spec.service_count(); ++s) {
    k8s::Service& service =
        w.cluster.add_service("service-" + std::to_string(s));
    w.services.push_back(&service);
    w.service_index[service.id] = static_cast<int>(s);
    for (std::uint32_t p = 0; p < w.spec.pods_per_service[s]; ++p) {
      w.cluster.add_pod(service, w.app_profile)
          .set_phase(k8s::PodPhase::kRunning);
    }
  }
}

void build_gateway(World& w) {
  core::GatewayConfig config;
  config.network.faults = &w.plan;
  w.gateway = std::make_unique<core::MeshGateway>(w.loop, config,
                                                  sim::Rng(w.spec.seed + 3));
  // Three backends with a shuffle-shard size of two, so extend-service
  // events have somewhere to extend to.
  w.gateway->add_az(3);
}

void build_plane(World& w) {
  const std::uint64_t seed = w.spec.seed;
  switch (w.plane_index) {
    case kNoMesh: {
      mesh::NetworkProfile net;
      net.faults = &w.plan;
      w.nomesh = std::make_unique<mesh::NoMesh>(w.loop, w.cluster, net,
                                                seed + 8);
      w.plane = w.nomesh.get();
      break;
    }
    case kIstio: {
      mesh::IstioMesh::Config config;
      config.network.faults = &w.plan;
      w.istio = std::make_unique<mesh::IstioMesh>(w.loop, w.cluster, config,
                                                  sim::Rng(seed + 1));
      w.istio->install();
      w.plane = w.istio.get();
      break;
    }
    case kAmbient: {
      mesh::AmbientMesh::Config config;
      config.network.faults = &w.plan;
      w.ambient = std::make_unique<mesh::AmbientMesh>(w.loop, w.cluster,
                                                      config,
                                                      sim::Rng(seed + 2));
      w.ambient->install();
      w.plane = w.ambient.get();
      break;
    }
    case kCanal: {
      build_gateway(w);
      w.key_server = std::make_unique<crypto::KeyServer>(
          w.loop, static_cast<net::AzId>(0), 8, sim::Rng(seed + 4));
      core::CanalMesh::Config config;
      config.network.faults = &w.plan;
      w.canal = std::make_unique<core::CanalMesh>(
          w.loop, w.cluster, *w.gateway, config, sim::Rng(seed + 5));
      w.canal->install();
      w.canal->attach_key_server(static_cast<net::AzId>(0),
                                 w.key_server.get());
      w.plane = w.canal.get();
      break;
    }
    default: {
      build_gateway(w);
      core::ProxylessMesh::Config config;
      config.network.faults = &w.plan;
      w.proxyless = std::make_unique<core::ProxylessMesh>(
          w.loop, w.cluster, *w.gateway, config, sim::Rng(seed + 7));
      w.proxyless->install();
      w.plane = w.proxyless.get();
      break;
    }
  }
}

/// Arms the shared resilience filter chain (token bucket -> breaker ->
/// outlier ejection) on the plane from the spec's ResilienceSpec. Every
/// plane receives the identical config; only completion timing differs.
void enable_resilience(World& w) {
  const ResilienceSpec& r = w.spec.resilience;
  if (!r.enabled) return;
  proxy::ResilienceConfig config;
  proxy::BreakerConfig breaker;
  breaker.consecutive_errors = r.breaker_consecutive_errors;
  breaker.base_ejection_time = r.breaker_ejection_time;
  config.breaker = breaker;
  proxy::OutlierConfig outlier;
  outlier.consecutive_errors = r.outlier_consecutive_errors;
  outlier.base_ejection_time = r.outlier_ejection_time;
  outlier.max_ejection_percent = r.max_ejection_percent;
  config.outlier = outlier;
  if (r.rate_limit) {
    proxy::RateLimitConfig limit;
    limit.tokens_per_second = r.rate_tokens_per_second;
    limit.burst = r.rate_burst;
    config.rate_limit = limit;
  }
  w.plane->enable_resilience(config);
}

// --- custom route tables --------------------------------------------------

[[nodiscard]] bool has_custom_routes(const ScenarioSpec& spec,
                                     std::uint32_t service) {
  for (const auto& d : spec.direct_responses) {
    if (d.service == service) return true;
  }
  for (const auto& sp : spec.splits) {
    if (sp.service == service) return true;
  }
  return false;
}

/// The most recent kPushConfig event for service `s` whose push time is
/// <= `now`, or nullptr. Bootstrap/reconfig paths (new sidecars, gateway
/// extends) rebuild tables from the controller's *desired* state — the
/// latest pushed config — which keeps late-built proxies consistent with
/// the converged fleet. The planted stale-route plane never sees pushed
/// config anywhere, matching its suppressed epoch applies.
[[nodiscard]] const EventSpec* pushed_for(const World& w, std::uint32_t s,
                                          sim::TimePoint now) {
  if (w.spec.planted_skip_config_plane ==
      static_cast<int>(w.plane_index)) {
    return nullptr;
  }
  const EventSpec* best = nullptr;
  for (const auto& ev : w.spec.events) {
    if (ev.kind != EventKind::kPushConfig || ev.at > now) continue;
    if (ev.service % w.spec.service_count() != s) continue;
    if (best == nullptr || ev.at >= best->at) best = &ev;
  }
  return best;
}

/// Builds the route table installed for custom-routed service `s`:
/// the pushed rule (when a kPushConfig event is being applied), then
/// direct-response rules, then split rules, then the default route.
[[nodiscard]] http::RouteTable custom_table(const World& w, std::uint32_t s,
                                            const EventSpec* pushed = nullptr) {
  http::RouteTable table;
  if (pushed != nullptr) {
    http::RouteRule rule;
    rule.name = "pushed";
    rule.match.path_kind = http::RouteMatch::PathKind::kPrefix;
    rule.match.path = std::string(kPushedConfigPrefix);
    rule.action.direct_response_status = pushed->config_status;
    table.add_rule(std::move(rule));
  }
  for (const auto& d : w.spec.direct_responses) {
    if (d.service != s) continue;
    http::RouteRule rule;
    rule.name = "direct";
    rule.match.path_kind = http::RouteMatch::PathKind::kPrefix;
    rule.match.path = d.path_prefix;
    rule.action.direct_response_status = d.status;
    table.add_rule(std::move(rule));
  }
  for (const auto& sp : w.spec.splits) {
    if (sp.service != s) continue;
    http::RouteRule rule;
    rule.name = "split";
    rule.match.path_kind = http::RouteMatch::PathKind::kPrefix;
    rule.match.path = sp.path_prefix;
    rule.action.clusters = {
        {mesh::service_cluster_name(w.services[s]->id), sp.primary_weight},
        {mesh::service_cluster_name(w.services[sp.canary_service]->id),
         sp.canary_weight}};
    table.add_rule(std::move(rule));
  }
  http::RouteRule fallback;
  fallback.name = "default";
  fallback.action.clusters = {
      {mesh::service_cluster_name(w.services[s]->id), 1}};
  table.add_rule(std::move(fallback));
  return table;
}

/// Installs the canary endpoint pools plus custom route tables into one L7
/// engine. Canary pools go in first so a table never references a missing
/// cluster; `install_canaries` is false for Istio sidecars, whose full
/// config already contains every service's pool (reinstalling would reset
/// the canary service's own table).
void apply_custom_routes(World& w, proxy::ProxyEngine& engine,
                         bool install_canaries) {
  if (install_canaries) {
    for (const auto& sp : w.spec.splits) {
      mesh::install_service_config(engine, *w.services[sp.canary_service]);
    }
  }
  for (std::uint32_t s = 0; s < w.spec.service_count(); ++s) {
    const EventSpec* pushed = pushed_for(w, s, w.loop.now());
    if (!has_custom_routes(w.spec, s) && pushed == nullptr) continue;
    engine.set_route_table(w.services[s]->id, custom_table(w, s, pushed));
  }
}

/// Re-applies custom routing on one gateway backend (after install_service /
/// extend_service clobbered its tables with defaults).
void apply_gateway_custom_routes(World& w, core::GatewayBackend& backend) {
  bool hosts_custom = false;
  for (std::uint32_t s = 0; s < w.spec.service_count(); ++s) {
    if (!backend.hosts(w.services[s]->id)) continue;
    if (has_custom_routes(w.spec, s) ||
        pushed_for(w, s, w.loop.now()) != nullptr) {
      hosts_custom = true;
    }
  }
  if (!hosts_custom) return;
  for (std::size_t i = 0; i < backend.replica_count(); ++i) {
    proxy::ProxyEngine& engine = backend.replica(i)->engine();
    for (const auto& sp : w.spec.splits) {
      if (!backend.hosts(w.services[sp.service]->id)) continue;
      mesh::install_service_config(engine, *w.services[sp.canary_service]);
    }
    for (std::uint32_t s = 0; s < w.spec.service_count(); ++s) {
      const EventSpec* pushed = pushed_for(w, s, w.loop.now());
      if (!has_custom_routes(w.spec, s) && pushed == nullptr) continue;
      if (!backend.hosts(w.services[s]->id)) continue;
      engine.set_route_table(w.services[s]->id, custom_table(w, s, pushed));
    }
  }
}

void install_custom_routes(World& w) {
  switch (w.plane_index) {
    case kNoMesh:
      break;  // L4-only: route tables are ignored by design
    case kIstio:
      for (const auto& pod : w.cluster.pods()) {
        if (auto* engine = w.istio->sidecar_engine(pod->id())) {
          apply_custom_routes(w, *engine, /*install_canaries=*/false);
        }
      }
      break;
    case kAmbient:
      for (std::uint32_t s = 0; s < w.spec.service_count(); ++s) {
        if (!has_custom_routes(w.spec, s)) continue;
        if (auto* engine = w.ambient->waypoint_engine(w.services[s]->id)) {
          for (const auto& sp : w.spec.splits) {
            if (sp.service != s) continue;
            mesh::install_service_config(*engine,
                                         *w.services[sp.canary_service]);
          }
          engine->set_route_table(w.services[s]->id, custom_table(w, s));
        }
      }
      break;
    default:
      for (core::GatewayBackend* backend : w.gateway->all_backends()) {
        apply_gateway_custom_routes(w, *backend);
      }
      break;
  }
}

// --- endpoint refresh on membership changes -------------------------------

/// Refreshes every endpoint pool holding `service` after a membership
/// change (new pod). Covers canary copies of the pool installed for
/// weighted splits. Refreshing preserves RR cursors and surviving
/// UpstreamEndpoint identity, so in-flight requests are safe.
void refresh_service_everywhere(World& w, k8s::Service& service) {
  switch (w.plane_index) {
    case kNoMesh:
      break;  // reads Service::ready_endpoints() directly
    case kIstio:
      for (const auto& pod : w.cluster.pods()) {
        if (auto* engine = w.istio->sidecar_engine(pod->id())) {
          mesh::refresh_endpoints(*engine, service);
        }
      }
      break;
    case kAmbient: {
      if (auto* engine = w.ambient->waypoint_engine(service.id)) {
        mesh::refresh_endpoints(*engine, service);
      }
      for (const auto& sp : w.spec.splits) {
        if (w.services[sp.canary_service] != &service) continue;
        if (auto* owner = w.ambient->waypoint_engine(
                w.services[sp.service]->id)) {
          mesh::refresh_endpoints(*owner, service);
        }
      }
      break;
    }
    default: {
      for (core::GatewayBackend* backend :
           w.gateway->placement_of(service.id)) {
        backend->refresh_endpoints(service);
      }
      for (const auto& sp : w.spec.splits) {
        if (w.services[sp.canary_service] != &service) continue;
        for (core::GatewayBackend* backend :
             w.gateway->placement_of(w.services[sp.service]->id)) {
          backend->refresh_endpoints(service);
        }
      }
      break;
    }
  }
}

// --- scenario events ------------------------------------------------------

void apply_add_pod(World& w, const EventSpec& ev) {
  k8s::Service& service = *w.services[ev.service];
  k8s::Pod& pod = w.cluster.add_pod(service, w.app_profile);
  pod.set_phase(k8s::PodPhase::kRunning);
  switch (w.plane_index) {
    case kNoMesh:
      break;
    case kIstio:
      w.istio->add_sidecar(pod);
      if (auto* engine = w.istio->sidecar_engine(pod.id())) {
        apply_custom_routes(w, *engine, /*install_canaries=*/false);
      }
      break;
    case kAmbient:
      w.ambient->on_pod_created(pod);
      break;
    case kCanal:
      w.canal->on_pod_created(pod);
      break;
    default:
      w.proxyless->enis().allocate(pod);
      break;
  }
  refresh_service_everywhere(w, service);
}

void apply_extend_service(World& w, const EventSpec& ev) {
  if (!w.has_gateway()) return;
  const net::ServiceId id = w.services[ev.service]->id;
  for (core::GatewayBackend* backend : w.gateway->all_backends()) {
    if (backend->is_sandbox() || !backend->alive() || backend->hosts(id)) {
      continue;
    }
    w.gateway->extend_service(id, *backend);
    apply_gateway_custom_routes(w, *backend);
    return;
  }
}

void apply_retract_service(World& w, const EventSpec& ev) {
  if (!w.has_gateway()) return;
  const net::ServiceId id = w.services[ev.service]->id;
  auto placement = w.gateway->placement_of(id);
  if (placement.size() < 2) return;  // keep the service resolvable
  w.gateway->retract_service(id, *placement.back());
}

void apply_drain_replica(World& w, const EventSpec& ev) {
  if (!w.has_gateway()) return;
  auto backends = w.gateway->all_backends();
  if (backends.empty()) return;
  core::GatewayBackend& backend = *backends[ev.backend % backends.size()];
  if (ev.replica >= backend.replica_count()) return;
  core::GatewayReplica& replica = *backend.replica(ev.replica);
  std::size_t in_service = 0;
  for (std::size_t i = 0; i < backend.replica_count(); ++i) {
    if (backend.in_service(backend.replica(i)->id())) ++in_service;
  }
  // Draining the last serving replica would not be transparent.
  if (in_service < 2 || !backend.in_service(replica.id())) return;
  backend.drain_replica(replica.id());
}

void ensure_propagation(World& w) {
  if (w.propagation != nullptr) return;
  w.propagation = std::make_unique<k8s::ConfigPropagation>(
      w.loop, k8s::ControlPlaneProfile{});
}

void ensure_rotation(World& w) {
  if (w.rotation_accel != nullptr) return;
  w.cert_propagation = std::make_unique<k8s::ConfigPropagation>(
      w.loop, k8s::ControlPlaneProfile{});
  w.rotation_cpu = std::make_unique<sim::CpuSet>(w.loop, 4);
  w.rotation_accel = std::make_unique<crypto::AsymmetricAccelerator>(
      w.loop, *w.rotation_cpu, crypto::AccelMode::kBatched);
  w.rotation_ca = std::make_unique<crypto::CertificateAuthority>(
      "fuzz-ca", w.rotation_rng);
}

/// kPushConfig: delivers the event's route table as a config epoch. Each
/// proxy's table flips at its own delivery time — between the push and
/// convergence the planes disagree, which is exactly the window the
/// config-propagation-window allowlist entry exempts.
void apply_push_config(World& w, PlaneResult& result, std::size_t event_index,
                       std::size_t window) {
  ensure_propagation(w);
  const EventSpec& ev = w.spec.events[event_index];
  const auto s = static_cast<std::uint32_t>(
      ev.service % w.spec.service_count());
  mesh::MeshDataplane::EngineApply apply;
  if (w.spec.planted_skip_config_plane == static_cast<int>(w.plane_index)) {
    // Planted stale-route bug: epochs ack, route tables never change.
    apply = [](proxy::ProxyEngine&) {};
  } else {
    apply = [&w, &result, s, event_index](proxy::ProxyEngine& engine) {
      engine.set_route_table(w.services[s]->id,
                             custom_table(w, s, &w.spec.events[event_index]));
      result.max_epoch_skew =
          std::max(result.max_epoch_skew, w.propagation->epoch_skew());
    };
  }
  w.propagation->push_epoch(
      w.plane->config_epoch_targets(apply),
      [&w, &result, window](k8s::EpochReport) {
        result.config_windows[window].second = w.loop.now();
      });
}

/// kRotateCerts: staggered re-signing of every workload identity through
/// the batch crypto accelerator, then southbound distribution of the
/// fresh certs as one null-apply epoch (certificates change no routes).
/// Distribution goes through the dedicated cert stream — never the route
/// stream, where a fast cert epoch would supersede an in-flight route
/// push and silently drop its table.
void apply_rotate_certs(World& w, PlaneResult& result,
                        std::size_t event_index) {
  ensure_rotation(w);
  const EventSpec& ev = w.spec.events[event_index];
  std::vector<std::string> identities;
  for (const auto& pod : w.cluster.pods()) {
    identities.push_back("spiffe://tenant-1/ns/default/sa/pod-" +
                         std::to_string(net::id_value(pod->id())));
  }
  crypto::CertRotationWave::Options options;
  if (ev.duration > 0) options.stagger = ev.duration;
  w.rotation_waves.push_back(std::make_unique<crypto::CertRotationWave>(
      w.loop, *w.rotation_ca, options));
  w.rotation_waves.back()->run(
      identities, *w.rotation_accel, w.rotation_rng, nullptr,
      [&w, &result](crypto::RotationReport report) {
        result.certs_rotated += report.rotated;
        auto targets =
            w.plane->config_epoch_targets([](proxy::ProxyEngine&) {});
        const auto n = targets.empty() ? std::size_t{1} : targets.size();
        for (auto& t : targets) {
          t.target.config_bytes = report.cert_bytes / n;
        }
        w.cert_propagation->push_epoch(std::move(targets));
      });
}

/// Fault events go into the FaultPlan (armed by the injector / consulted by
/// NetworkProfile); ops events are scheduled directly on the loop.
void schedule_events(World& w, PlaneResult& result) {
  for (std::size_t e = 0; e < w.spec.events.size(); ++e) {
    const EventSpec& ev = w.spec.events[e];
    switch (ev.kind) {
      case EventKind::kPodKill: {
        const auto& endpoints = w.services[ev.service]->endpoints;
        const k8s::Pod* pod = endpoints[ev.pod % endpoints.size()];
        w.plan.kill_pod_for(ev.at, net::id_value(pod->id()), ev.duration);
        break;
      }
      case EventKind::kLinkLoss:
        w.plan.link_loss(ev.at, ev.at + ev.duration, 1.0);
        break;
      case EventKind::kLatencySpike:
        w.plan.link_latency_spike(ev.at, ev.at + ev.duration,
                                  ev.extra_latency);
        break;
      case EventKind::kReplicaCrash: {
        if (!w.has_gateway()) break;
        auto backends = w.gateway->all_backends();
        const core::GatewayBackend* backend =
            backends[ev.backend % backends.size()];
        const auto backend_id =
            static_cast<std::uint32_t>(net::id_value(backend->id()));
        w.plan.crash_gateway_replica(ev.at, backend_id, ev.replica);
        w.plan.recover_gateway_replica(ev.at + ev.duration, backend_id,
                                       ev.replica);
        break;
      }
      case EventKind::kAddPod:
        w.loop.post_at(ev.at, [&w, e] { apply_add_pod(w, w.spec.events[e]); });
        break;
      case EventKind::kExtendService:
        w.loop.post_at(ev.at,
                       [&w, e] { apply_extend_service(w, w.spec.events[e]); });
        break;
      case EventKind::kRetractService:
        w.loop.post_at(ev.at,
                       [&w, e] { apply_retract_service(w, w.spec.events[e]); });
        break;
      case EventKind::kDrainReplica:
        w.loop.post_at(ev.at,
                       [&w, e] { apply_drain_replica(w, w.spec.events[e]); });
        break;
      case EventKind::kPushConfig: {
        const std::size_t window = result.config_windows.size();
        result.config_windows.emplace_back(ev.at, ev.at);
        w.loop.post_at(ev.at, [&w, &result, e, window] {
          apply_push_config(w, result, e, window);
        });
        break;
      }
      case EventKind::kRotateCerts:
        w.loop.post_at(ev.at,
                       [&w, &result, e] { apply_rotate_certs(w, result, e); });
        break;
    }
  }
  w.injector = std::make_unique<core::FaultInjector>(w.loop, w.cluster,
                                                     w.gateway.get());
  w.injector->arm(w.plan);
}

// --- request driving ------------------------------------------------------

void record_completion(World& w, PlaneResult& result, std::size_t i,
                       const mesh::RequestResult& r) {
  RequestOutcome& out = result.outcomes[i];
  const RequestSpec& rs = w.spec.requests[i];
  if (out.completed) {
    violate(result, "request " + std::to_string(i) + " completed twice");
    return;
  }
  out.completed = true;
  out.status = r.status;
  out.attempts = r.attempts;
  out.timed_out = r.timed_out;
  out.rate_limited = r.rate_limited;
  out.resilience_affected = r.resilience_affected;
  out.completed_at = w.loop.now();
  if (w.loop.now() < w.last_completion) {
    violate(result, "clock regressed at request " + std::to_string(i));
  }
  w.last_completion = w.loop.now();
  if (k8s::Pod* pod = w.cluster.find_pod(r.served_by)) {
    const auto it = w.service_index.find(pod->service());
    out.served_service = it == w.service_index.end() ? -1 : it->second;
  }
  // Test-only planted differential bug (shrinker convergence tests).
  if (w.spec.planted_plane == static_cast<int>(w.plane_index) &&
      !rs.null_client && !rs.unknown_service &&
      rs.dst_service == w.spec.planted_service) {
    out.status = 599;
  }
  if (net::id_value(r.tenant) != rs.tenant) {
    violate(result, "request " + std::to_string(i) + " ran as tenant " +
                        std::to_string(net::id_value(r.tenant)) +
                        ", spec says " + std::to_string(rs.tenant));
  }
  if (!w.traced()) return;
  out.traced = r.trace != nullptr;
  if (r.trace == nullptr) {
    violate(result, "request " + std::to_string(i) + " missing trace");
    return;
  }
  if (r.trace->tenant() != r.tenant) {
    violate(result, "request " + std::to_string(i) +
                        " trace tenant disagrees with result tenant");
  }
  if (!r.trace->contiguous()) {
    violate(result, "request " + std::to_string(i) +
                        " trace has gaps/overlaps: " + r.trace->to_json());
  }
  if (r.trace->total_duration() != r.latency) {
    violate(result,
            "request " + std::to_string(i) + " trace spans sum to " +
                std::to_string(r.trace->total_duration()) + "ns, latency is " +
                std::to_string(r.latency) + "ns");
  }
  w.recorders.record(*r.trace, r.status);
  World::ExpectedTenant& expected = w.expected[r.trace->tenant()];
  ++expected.count;
  expected.latency_sum_us += sim::to_microseconds(r.trace->total_duration());
  if (r.status >= 400) ++expected.errors;
  if (out.sampled) result.traces.add(*r.trace, i, r.status);
}

void schedule_requests(World& w, PlaneResult& result) {
  result.outcomes.resize(w.spec.requests.size());
  for (std::size_t i = 0; i < w.spec.requests.size(); ++i) {
    result.outcomes[i].issued_at = w.spec.requests[i].at;
    w.loop.post_at(w.spec.requests[i].at, [&w, &result, i] {
      const RequestSpec& rs = w.spec.requests[i];
      mesh::RequestOptions opts;
      if (!rs.null_client) {
        const auto& endpoints = w.services[rs.client_service]->endpoints;
        opts.client = endpoints[rs.client_pod % endpoints.size()];
      }
      opts.dst_service = rs.unknown_service
                             ? kUnknownService
                             : w.services[rs.dst_service]->id;
      opts.tenant = static_cast<net::TenantId>(rs.tenant);
      opts.path = rs.path;
      opts.trace = w.traced();
      // Head-based sampling: decided when the request is issued, before
      // any outcome is known.
      if (w.traced()) {
        result.outcomes[i].sampled = w.sampler.should_sample(opts.tenant);
      }
      w.plane->send_request_with_retries(
          opts, w.retry_policy, w.retry_rng,
          [&w, &result, i](mesh::RequestResult r) {
            record_completion(w, result, i, r);
          });
    });
  }
}

// --- post-run invariants --------------------------------------------------

void check_sessions_of(PlaneResult& result, const std::string& where,
                       std::size_t count) {
  if (count == 0) return;
  violate(result, where + " holds " + std::to_string(count) +
                      " sessions after drain");
}

void check_gateway_sessions(World& w, PlaneResult& result) {
  std::size_t index = 0;
  for (core::GatewayBackend* backend : w.gateway->all_backends()) {
    for (std::size_t i = 0; i < backend->replica_count(); ++i) {
      check_sessions_of(result,
                        "gateway backend " + std::to_string(index) +
                            " replica " + std::to_string(i),
                        backend->replica(i)->engine().sessions().size());
    }
    ++index;
  }
}

void check_session_drain(World& w, PlaneResult& result) {
  switch (w.plane_index) {
    case kNoMesh:
      break;
    case kIstio:
      for (const auto& pod : w.cluster.pods()) {
        if (auto* engine = w.istio->sidecar_engine(pod->id())) {
          check_sessions_of(result,
                            "sidecar of pod " +
                                std::to_string(net::id_value(pod->id())),
                            engine->sessions().size());
        }
      }
      break;
    case kAmbient: {
      std::size_t n = 0;
      for (const auto& node : w.cluster.nodes()) {
        if (auto* engine = w.ambient->ztunnel_engine(*node)) {
          check_sessions_of(result, "ztunnel " + std::to_string(n),
                            engine->sessions().size());
        }
        ++n;
      }
      for (std::size_t s = 0; s < w.services.size(); ++s) {
        if (auto* engine = w.ambient->waypoint_engine(w.services[s]->id)) {
          check_sessions_of(result, "waypoint " + std::to_string(s),
                            engine->sessions().size());
        }
      }
      break;
    }
    case kCanal: {
      std::size_t n = 0;
      for (const auto& node : w.cluster.nodes()) {
        if (auto* proxy = w.canal->proxy_for(*node)) {
          check_sessions_of(result, "on-node proxy " + std::to_string(n),
                            proxy->engine().sessions().size());
        }
        ++n;
      }
      check_gateway_sessions(w, result);
      break;
    }
    default:
      check_gateway_sessions(w, result);
      break;
  }
}

/// Metrics ≡ trace-totals, per tenant: every tenant's registry slice
/// (count, summed latency, request/error counters) must equal what the
/// traces it recorded imply. The latency sum is compared exactly — the
/// histogram performs the identical IEEE additions in the identical
/// order — so a single misrouted or double-counted record is caught.
void check_metrics(World& w, PlaneResult& result) {
  if (!w.traced()) return;  // proxyless has gateway-side observability only
  std::uint64_t tenant_total = 0;
  for (const auto& [tenant, expected] : w.expected) {
    const std::string tenant_str = std::to_string(net::id_value(tenant));
    const telemetry::MetricsRegistry::Labels labels = {
        {"dataplane", std::string(kPlanes[w.plane_index])},
        {"tenant", tenant_str}};
    const telemetry::HdrHistogram* latency =
        w.registry.find_histogram("request_latency_us", labels);
    const std::uint64_t recorded = latency == nullptr ? 0 : latency->count();
    if (recorded != expected.count) {
      violate(result, "tenant " + tenant_str + " registry holds " +
                          std::to_string(recorded) +
                          " request latencies, traces produced " +
                          std::to_string(expected.count));
      continue;
    }
    if (latency == nullptr) continue;
    if (latency->sum() != expected.latency_sum_us) {
      violate(result, "tenant " + tenant_str + " latency sum is " +
                          std::to_string(latency->sum()) +
                          "us, trace-derived sum is " +
                          std::to_string(expected.latency_sum_us) + "us");
    }
    const auto* requests = w.registry.find_counter("requests_total", labels);
    const double counted = requests == nullptr ? 0.0 : requests->value();
    if (counted != static_cast<double>(expected.count)) {
      violate(result, "tenant " + tenant_str + " requests_total counter is " +
                          std::to_string(counted) + ", traces recorded " +
                          std::to_string(expected.count));
    }
    const auto* errors =
        w.registry.find_counter("request_errors_total", labels);
    const double error_count = errors == nullptr ? 0.0 : errors->value();
    if (error_count != static_cast<double>(expected.errors)) {
      violate(result, "tenant " + tenant_str +
                          " request_errors_total counter is " +
                          std::to_string(error_count) + ", traces recorded " +
                          std::to_string(expected.errors));
    }
    tenant_total += recorded;
  }
  // The tenant slices must also account for every recorded trace — a
  // record that invented a tenant would show up as a phantom histogram.
  std::uint64_t registry_total = 0;
  for (const auto& [labels, hist] :
       w.registry.histograms_named("request_latency_us")) {
    (void)labels;
    registry_total += hist->count();
  }
  if (registry_total != tenant_total) {
    violate(result, "registry holds " + std::to_string(registry_total) +
                        " request latencies across all labels, expected " +
                        std::to_string(tenant_total) +
                        " from the known tenants");
  }
}

/// Sampled-trace counts must match the sampler's closed form exactly:
/// after n issued requests at rate r with phase p, floor(n*r + p) traces
/// are in the export — no drift, no off-by-one, on any plane.
void check_sampling(World& w, PlaneResult& result) {
  if (!w.traced()) return;
  // Tenants come from the spec, not from w.expected: a tenant whose every
  // request failed early still issued requests and owes the closed form.
  std::map<net::TenantId, std::uint64_t> spec_issued;
  for (const RequestSpec& rs : w.spec.requests) {
    ++spec_issued[static_cast<net::TenantId>(rs.tenant)];
  }
  std::uint64_t sampled_total = 0;
  for (const auto& [tenant, issued_in_spec] : spec_issued) {
    const std::uint64_t issued = w.sampler.issued(tenant);
    if (issued != issued_in_spec) {
      violate(result, "tenant " + std::to_string(net::id_value(tenant)) +
                          " issued " + std::to_string(issued) +
                          " sampler decisions, spec has " +
                          std::to_string(issued_in_spec) + " requests");
    }
    const std::uint64_t sampled = w.sampler.sampled(tenant);
    const std::uint64_t closed_form = w.sampler.expected_samples(tenant,
                                                                 issued);
    if (sampled != closed_form) {
      violate(result, "tenant " + std::to_string(net::id_value(tenant)) +
                          " sampled " + std::to_string(sampled) + " of " +
                          std::to_string(issued) +
                          " traces, closed form says " +
                          std::to_string(closed_form));
    }
    sampled_total += sampled;
  }
  if (result.traces.size() != sampled_total &&
      result.invariant_violations.empty()) {
    violate(result, "trace export holds " +
                        std::to_string(result.traces.size()) +
                        " traces, sampler took " +
                        std::to_string(sampled_total));
  }
}

void check_conservation(World& w, PlaneResult& result) {
  std::size_t completed = 0;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    if (result.outcomes[i].completed) {
      ++completed;
    } else {
      violate(result, "request " + std::to_string(i) +
                          " still in flight after the loop drained");
    }
  }
  if (completed != w.spec.requests.size()) {
    violate(result, "conservation: issued " +
                        std::to_string(w.spec.requests.size()) +
                        ", completed " + std::to_string(completed));
  }
  if (w.loop.pending_events() != 0) {
    violate(result, "event loop reports " +
                        std::to_string(w.loop.pending_events()) +
                        " pending events after run()");
  }
}

}  // namespace

PlaneResult run_plane(const ScenarioSpec& spec, std::size_t plane_index) {
  World w(spec, plane_index);
  PlaneResult result;
  result.plane = kPlanes[plane_index];

  build_topology(w);
  build_plane(w);
  install_custom_routes(w);
  enable_resilience(w);
  w.recorders = telemetry::TenantRecorderSet(
      w.registry, telemetry::MetricsRegistry::Labels{
                      {"dataplane", std::string(kPlanes[plane_index])}});
  w.retry_policy.max_attempts = 3;
  // Well above any clean-path latency (including injected spikes), so only
  // genuinely lost requests are abandoned.
  w.retry_policy.per_try_timeout = sim::milliseconds(250);

  schedule_events(w, result);
  schedule_requests(w, result);
  w.loop.run();

  check_conservation(w, result);
  check_session_drain(w, result);
  check_metrics(w, result);
  check_sampling(w, result);
  if (w.propagation != nullptr) {
    result.config_applies = w.propagation->applies_total();
    result.config_superseded = w.propagation->superseded_total();
  }
  if (w.cert_propagation != nullptr) {
    result.config_applies += w.cert_propagation->applies_total();
    result.config_superseded += w.cert_propagation->superseded_total();
  }
  if (w.rotation_accel != nullptr) {
    result.rotation_batches = w.rotation_accel->batches_flushed();
  }
  return result;
}

std::array<PlaneResult, 5> run_all_planes(const ScenarioSpec& spec) {
  return {run_plane(spec, kNoMesh), run_plane(spec, kIstio),
          run_plane(spec, kAmbient), run_plane(spec, kCanal),
          run_plane(spec, kProxyless)};
}

}  // namespace canal::fuzz
