// Greedy scenario shrinker.
//
// Given a failing ScenarioSpec, repeatedly tries dropping one program
// element (event, request, split, direct-response rule) and keeps the
// drop whenever the shrunk spec still fails the oracle, until a full
// pass removes nothing or the evaluation budget runs out. Re-executing
// a candidate means re-running all five planes, so the budget bounds
// total work; greedy one-at-a-time is enough because scenario programs
// are small (tens of elements).
#pragma once

#include <cstddef>

#include "fuzz/oracle.h"
#include "fuzz/scenario.h"

namespace canal::fuzz {

/// Runs `spec` on all planes and checks the oracle: true when the report
/// has at least one violation. This is the shrinker's predicate and is
/// also handy for tests and the campaign driver.
[[nodiscard]] bool scenario_fails(const ScenarioSpec& spec,
                                  const Allowlist& allowlist);

struct ShrinkResult {
  ScenarioSpec spec;        ///< smallest still-failing spec found
  std::size_t evals = 0;    ///< predicate evaluations spent
  std::size_t removed = 0;  ///< program elements dropped
};

/// Shrinks a failing spec. Precondition: scenario_fails(spec, allowlist)
/// is true; if it is not, the input is returned unchanged.
[[nodiscard]] ShrinkResult shrink(const ScenarioSpec& spec,
                                  const Allowlist& allowlist,
                                  std::size_t max_evals = 500);

}  // namespace canal::fuzz
