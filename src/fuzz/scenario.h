// Scenario programs for the differential dataplane fuzzer.
//
// A ScenarioSpec is a small, fully deterministic description of one
// simulated world: topology shape (nodes/services/pods), L7 traffic
// control (weighted canary splits, direct-response rules), a timed
// request program, and a timed event program (pod kills, link faults,
// gateway replica faults, pod/backend ops from the canal scaling
// vocabulary). The same spec is executed against every dataplane by
// fuzz::run_plane; the generator below produces specs from a (seed,
// index) pair so a fuzzing campaign is reproducible run to run, and a
// single failing spec can be re-created from those two numbers alone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace canal::fuzz {

/// One request in the scenario's traffic program. Pods and services are
/// addressed by build-order index, which is identical across planes
/// because every plane rebuilds the same cluster in the same order.
struct RequestSpec {
  sim::TimePoint at = 0;
  std::uint32_t client_service = 0;
  std::uint32_t client_pod = 0;
  std::uint32_t dst_service = 1;
  /// Tenant the request is issued under (mesh::RequestOptions.tenant).
  /// Derived from the request index — NOT from the generator's RNG — so
  /// adding the tenant dimension left every historical (seed, index)
  /// campaign scenario byte-identical.
  std::uint32_t tenant = 1;
  std::string path = "/";
  /// Error-matrix probes: requests that must fail identically everywhere.
  bool null_client = false;    ///< 400 on every plane
  bool unknown_service = false;  ///< 404 on every plane
};

/// A weighted canary split on `service`: requests matching `path_prefix`
/// are split between the service's own cluster and `canary_service`'s
/// cluster; everything else falls through to the default route.
struct SplitSpec {
  std::uint32_t service = 0;
  std::uint32_t canary_service = 1;
  std::uint32_t primary_weight = 90;
  std::uint32_t canary_weight = 10;
  std::string path_prefix = "/canary";
};

/// A direct-response rule on `service`: requests matching `path_prefix`
/// are answered by the L7 proxy itself with `status`, never reaching an
/// endpoint. NoMesh (L4-only) cannot honour it — the documented
/// l7-routing-nomesh divergence.
struct DirectResponseSpec {
  std::uint32_t service = 0;
  int status = 403;
  std::string path_prefix = "/blocked";
};

/// Path prefix matched by the route-table rule a kPushConfig event
/// delivers. Catches the generator's default "/api/items" traffic while
/// staying disjoint from the split ("/canary") and direct-response
/// ("/blocked") prefixes. Shared by the executor (installs the rule) and
/// the oracle (classifies post-push requests as direct-rule matches).
inline constexpr std::string_view kPushedConfigPrefix = "/api";

enum class EventKind : std::uint8_t {
  kPodKill,         ///< crash pod at `at`, restart `duration` later
  kLinkLoss,        ///< loss=1.0 window [at, at+duration)
  kLatencySpike,    ///< +`extra_latency` per hop in [at, at+duration)
  kReplicaCrash,    ///< gateway replica crash at `at`, recover after `duration`
  kAddPod,          ///< scale out `service` by one pod at `at`
  kExtendService,   ///< gateway op: extend `service` onto one more backend
  kRetractService,  ///< gateway op: drop one backend from `service`
  kDrainReplica,    ///< gateway op: gracefully drain one replica
  kPushConfig,      ///< push a route-table epoch for `service` at `at`
  kRotateCerts,     ///< rolling cert rotation wave starting at `at`
};

struct EventSpec {
  EventKind kind = EventKind::kPodKill;
  sim::TimePoint at = 0;
  sim::Duration duration = 0;
  std::uint32_t service = 0;  ///< pod-kill / add-pod / extend / retract
  std::uint32_t pod = 0;      ///< pod index within the service
  std::uint32_t backend = 0;  ///< backend index (replica faults / drain)
  std::uint32_t replica = 0;  ///< replica index within the backend
  sim::Duration extra_latency = 0;  ///< latency-spike magnitude
  /// Status code the route table pushed by kPushConfig answers "/api"
  /// traffic with (a direct-response rule delivered through the modeled
  /// control plane). Defaulted so historical regression snippets that
  /// predate the field still rebuild byte-identical specs.
  int config_status = 418;

  /// True for events that can change request semantics (status, retries,
  /// serving pod) while active. Ops events (add-pod, extend, retract,
  /// drain), latency spikes, and control-plane events must be
  /// semantically transparent — kPushConfig converges to the same table
  /// on every plane, with only the propagation window exempted — so the
  /// oracle compares requests overlapping them at full strictness.
  [[nodiscard]] bool is_fault() const noexcept {
    return kind == EventKind::kPodKill || kind == EventKind::kLinkLoss ||
           kind == EventKind::kReplicaCrash;
  }
};

/// Resilience filter-chain configuration applied identically to every
/// plane (proxy::ResilienceChain: per-tenant token bucket -> per-service
/// circuit breaker -> outlier ejection). Never set by generate_scenario:
/// following the RequestSpec::tenant precedent, arming resilience must
/// not consume generator RNG draws, so every historical (seed, index)
/// campaign scenario stays byte-identical. fuzz_mesh --resilience arms
/// it post-generation via derive_resilience(), which draws from a
/// separately salted RNG keyed by the same (seed, index).
struct ResilienceSpec {
  bool enabled = false;
  std::uint32_t breaker_consecutive_errors = 5;
  sim::Duration breaker_ejection_time = sim::milliseconds(40);
  std::uint32_t outlier_consecutive_errors = 5;
  sim::Duration outlier_ejection_time = sim::milliseconds(40);
  std::uint32_t max_ejection_percent = 50;
  /// Rate limiting is optional within an armed spec: token-bucket
  /// decisions are strictly compared across planes (they depend only on
  /// the arrival schedule), so mixing limited and unlimited campaigns
  /// exercises both the strict and the windowed oracle paths.
  bool rate_limit = false;
  double rate_tokens_per_second = 200.0;
  double rate_burst = 8.0;
};

/// One complete scenario program.
struct ScenarioSpec {
  std::uint64_t seed = 1;    ///< plane RNG seed (Testbed convention)
  std::uint32_t index = 0;   ///< campaign index this spec was generated at
  std::uint32_t nodes = 2;
  std::uint32_t node_cores = 8;
  std::vector<std::uint32_t> pods_per_service;  ///< size = service count
  sim::Duration app_service_time = sim::milliseconds(1);
  std::vector<SplitSpec> splits;
  std::vector<DirectResponseSpec> direct_responses;
  std::vector<RequestSpec> requests;
  std::vector<EventSpec> events;
  ResilienceSpec resilience;  ///< disabled unless armed (see above)

  /// Test-only planted bug: when `planted_plane` is >= 0, the executor
  /// misreports the status of requests to `planted_service` on that plane
  /// (by index into fuzz::kPlanes). Never set by generate_scenario; used
  /// by the shrinker tests to plant a reproducible differential failure.
  int planted_plane = -1;
  std::uint32_t planted_service = 0;
  /// Test-only planted bug: when >= 0, the executor suppresses config
  /// epoch *applies* on that plane — its proxies keep serving the
  /// pre-push route table forever. The resulting divergence outlives the
  /// propagation window, so no allowlist entry covers it; used by the
  /// shrinker tests as the stale-route bug. Never set by the generator.
  int planted_skip_config_plane = -1;

  [[nodiscard]] std::size_t service_count() const noexcept {
    return pods_per_service.size();
  }
  /// Shrinker currency: every droppable element of the program.
  [[nodiscard]] std::size_t program_size() const noexcept {
    return requests.size() + events.size() + splits.size() +
           direct_responses.size();
  }
};

/// Deterministically generates scenario `index` of a campaign keyed by
/// `seed`. Same (seed, index) -> identical spec, on any thread.
[[nodiscard]] ScenarioSpec generate_scenario(std::uint64_t seed,
                                             std::uint32_t index);

/// Deterministically derives an armed ResilienceSpec for scenario
/// (seed, index) from a salted RNG that shares no draws with
/// generate_scenario. fuzz_mesh --resilience assigns the result into the
/// generated spec; same (seed, index) -> identical config, any thread.
[[nodiscard]] ResilienceSpec derive_resilience(std::uint64_t seed,
                                               std::uint32_t index);

/// Deterministically derives armed control-plane events (kPushConfig,
/// optionally kRotateCerts) for scenario (seed, index) from a salted RNG
/// that shares no draws with generate_scenario or derive_resilience.
/// fuzz_mesh --control-plane appends the result to the generated spec's
/// event program; same (seed, index, service_count) -> identical events,
/// any thread.
[[nodiscard]] std::vector<EventSpec> derive_control_plane(
    std::uint64_t seed, std::uint32_t index, std::size_t service_count);

/// Emits a self-contained C++ snippet (a gtest TEST body) that rebuilds
/// `spec`, runs all planes, and asserts a clean oracle report — ready to
/// paste into tests/test_fuzz_regressions.cc.
[[nodiscard]] std::string to_cpp_snippet(const ScenarioSpec& spec);

}  // namespace canal::fuzz
