// Differential fuzzing campaign driver.
//
// Generates `--runs` scenarios from `--seed`, executes each against all
// five dataplanes, and checks the oracle. Scenarios fan out over a
// work-stealing pool, but each writes its report into a pre-sized slot
// and the summary reduces in index order, so the output (including the
// JSON report) is byte-identical for any `--jobs` value.
//
// Exit status: 0 when every scenario is clean, 1 on violations, 2 on
// usage errors.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/executor.h"
#include "fuzz/oracle.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"
#include "runner/thread_pool.h"

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::uint32_t runs = 100;
  std::size_t jobs = 1;
  std::string json_path;  ///< empty = no JSON file
  /// Re-runs scenario 0 on the canal plane and writes its sampled traces
  /// as Chrome trace-event JSON here (empty = off).
  std::string trace_path;
  bool shrink = false;
  /// Arm the resilience filter chain (rate limit -> breaker -> outlier
  /// ejection) on every scenario, with a per-scenario config derived from
  /// a salted RNG (see fuzz::derive_resilience).
  bool resilience = false;
  /// Arm control-plane dynamics on every scenario: a kPushConfig (and
  /// sometimes kRotateCerts) event derived from a salted RNG (see
  /// fuzz::derive_control_plane), delivered through the modeled
  /// propagation layer.
  bool control_plane = false;
  canal::fuzz::Allowlist allowlist;
};

/// Appends the armed control-plane events for (seed, index) to `spec`.
void arm_control_plane(canal::fuzz::ScenarioSpec& spec, std::uint64_t seed,
                       std::uint32_t index) {
  auto events =
      canal::fuzz::derive_control_plane(seed, index, spec.service_count());
  spec.events.insert(spec.events.end(), events.begin(), events.end());
}

void usage() {
  std::cerr
      << "usage: fuzz_mesh [--seed N] [--runs N] [--jobs N] [--json FILE]\n"
         "                 [--trace-out FILE] [--allow LIST] [--resilience]\n"
         "                 [--control-plane] [--shrink]\n"
         "\n"
         "  --seed N     campaign seed (default 1)\n"
         "  --runs N     number of scenarios to run (default 100; 0 is a\n"
         "               usage error — an empty campaign proves nothing)\n"
         "  --jobs N     worker threads (default 1; output is identical\n"
         "               for any value)\n"
         "  --json FILE  write the machine-readable campaign report here\n"
         "  --trace-out FILE\n"
         "               write scenario 0's sampled canal-plane traces as\n"
         "               Chrome trace-event JSON (chrome://tracing)\n"
         "  --allow LIST comma-separated divergence allowlist (default\n"
         "               all: l7-routing-nomesh,weighted-split,\n"
         "               fault-window,resilience-window,\n"
         "               config-propagation-window)\n"
         "  --resilience arm the resilience filter chain (per-tenant rate\n"
         "               limit, circuit breaker, outlier ejection) on every\n"
         "               scenario, config derived from a salted RNG\n"
         "  --control-plane\n"
         "               arm control-plane dynamics (push_config /\n"
         "               rotate_certs events through the modeled\n"
         "               propagation layer) on every scenario, derived\n"
         "               from a salted RNG\n"
         "  --shrink     on failure, shrink the first failing scenario and\n"
         "               print a ready-to-commit regression test\n";
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--runs") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      opts.runs = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      opts.jobs = std::strtoul(v, nullptr, 10);
      if (opts.jobs == 0) opts.jobs = 1;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      opts.json_path = v;
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      opts.trace_path = v;
    } else if (arg == "--allow") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      const auto parsed = canal::fuzz::Allowlist::parse(v);
      if (!parsed) {
        std::cerr << "fuzz_mesh: unknown allowlist entry in '" << v << "'\n";
        return std::nullopt;
      }
      opts.allowlist = *parsed;
    } else if (arg == "--resilience") {
      opts.resilience = true;
    } else if (arg == "--control-plane") {
      opts.control_plane = true;
    } else if (arg == "--shrink") {
      opts.shrink = true;
    } else {
      std::cerr << "fuzz_mesh: unknown argument '" << arg << "'\n";
      return std::nullopt;
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_args(argc, argv);
  if (!opts) {
    usage();
    return 2;
  }
  if (opts->runs == 0) {
    // A zero-scenario campaign would "pass" vacuously — the same trap as a
    // bench filter matching nothing. Refuse loudly instead of printing a
    // green summary that checked no property.
    std::cerr << "fuzz_mesh: --runs 0 executes no scenarios; refusing to "
                 "report success\n";
    return 2;
  }

  std::vector<canal::fuzz::ScenarioReport> reports(opts->runs);
  const auto run_one = [&](std::uint32_t i) {
    auto spec = canal::fuzz::generate_scenario(opts->seed, i);
    if (opts->resilience) {
      spec.resilience = canal::fuzz::derive_resilience(opts->seed, i);
    }
    if (opts->control_plane) arm_control_plane(spec, opts->seed, i);
    reports[i] = canal::fuzz::check_scenario(
        spec, canal::fuzz::run_all_planes(spec), opts->allowlist);
  };
  if (opts->jobs <= 1) {
    for (std::uint32_t i = 0; i < opts->runs; ++i) run_one(i);
  } else {
    canal::runner::WorkStealingPool pool(opts->jobs);
    for (std::uint32_t i = 0; i < opts->runs; ++i) {
      pool.submit([&run_one, i] { run_one(i); });
    }
    pool.wait_idle();
  }

  // Reduce in index order: deterministic output for any --jobs.
  std::size_t failed = 0;
  std::size_t total_violations = 0;
  std::string json = "{\"seed\":" + std::to_string(opts->seed) +
                     ",\"runs\":" + std::to_string(opts->runs) +
                     ",\"allowlist\":\"" + opts->allowlist.to_string() +
                     "\",\"failures\":[";
  for (const auto& report : reports) {
    if (report.clean()) continue;
    if (failed != 0) json += ',';
    json += report.to_json();
    ++failed;
    total_violations += report.violations.size();
  }
  json += "],\"failed\":" + std::to_string(failed) + "}";

  for (const auto& report : reports) {
    for (const auto& v : report.violations) {
      std::cout << "FAIL scenario " << report.index << " (seed "
                << report.seed << ") [" << v.plane << "] "
                << (v.kind == canal::fuzz::Violation::Kind::kInvariant
                        ? "invariant"
                        : "differential")
                << (v.request >= 0
                        ? " request " + std::to_string(v.request) + ": "
                        : ": ")
                << v.detail << "\n";
    }
  }
  std::cout << "fuzz_mesh: " << opts->runs << " scenarios, " << failed
            << " failing, " << total_violations << " violations (seed "
            << opts->seed << ", allowlist "
            << opts->allowlist.to_string() << ")\n";

  if (!opts->json_path.empty()) {
    std::ofstream out(opts->json_path, std::ios::trunc);
    if (!out) {
      std::cerr << "fuzz_mesh: cannot write " << opts->json_path << "\n";
      return 2;
    }
    out << json << "\n";
  }

  if (!opts->trace_path.empty() && opts->runs > 0) {
    // Deterministic re-run (same spec, fresh world) so the export does not
    // depend on which pool thread ran scenario 0.
    auto spec = canal::fuzz::generate_scenario(opts->seed, 0);
    if (opts->resilience) {
      spec.resilience = canal::fuzz::derive_resilience(opts->seed, 0);
    }
    if (opts->control_plane) arm_control_plane(spec, opts->seed, 0);
    const auto plane = canal::fuzz::run_plane(spec, canal::fuzz::kCanal);
    std::string error;
    if (!canal::telemetry::validate_chrome_trace(plane.traces.to_json(),
                                                 &error)) {
      std::cerr << "fuzz_mesh: trace export failed validation: " << error
                << "\n";
      return 1;
    }
    if (!plane.traces.write_file(opts->trace_path)) {
      std::cerr << "fuzz_mesh: cannot write " << opts->trace_path << "\n";
      return 2;
    }
    std::cout << "fuzz_mesh: wrote " << plane.traces.size()
              << " sampled traces to " << opts->trace_path << "\n";
  }

  if (failed == 0) return 0;

  if (opts->shrink) {
    for (const auto& report : reports) {
      if (report.clean()) continue;
      auto spec = canal::fuzz::generate_scenario(opts->seed, report.index);
      if (opts->resilience) {
        spec.resilience =
            canal::fuzz::derive_resilience(opts->seed, report.index);
      }
      if (opts->control_plane) {
        arm_control_plane(spec, opts->seed, report.index);
      }
      const auto shrunk =
          canal::fuzz::shrink(spec, opts->allowlist);
      std::cout << "\nshrunk scenario " << report.index << " from "
                << spec.program_size() << " to "
                << shrunk.spec.program_size() << " program elements ("
                << shrunk.evals << " evaluations)\n\n"
                << canal::fuzz::to_cpp_snippet(shrunk.spec);
      break;  // only the first failure: shrinking is expensive
    }
  }
  return 1;
}
