#include "fuzz/shrink.h"

#include <cstdint>
#include <vector>

namespace canal::fuzz {
namespace {

/// Tries dropping each element of `field` (a vector member of the spec)
/// one at a time, keeping drops that preserve failure. Returns true when
/// anything was removed.
template <typename T>
bool shrink_field(ScenarioSpec& spec, std::vector<T> ScenarioSpec::* field,
                  const Allowlist& allowlist, std::size_t max_evals,
                  ShrinkResult& result) {
  bool removed_any = false;
  for (std::size_t i = 0; i < (spec.*field).size();) {
    if (result.evals >= max_evals) return removed_any;
    ScenarioSpec candidate = spec;
    (candidate.*field).erase((candidate.*field).begin() +
                             static_cast<std::ptrdiff_t>(i));
    ++result.evals;
    if (scenario_fails(candidate, allowlist)) {
      spec = std::move(candidate);
      ++result.removed;
      removed_any = true;  // retry the same index: it holds a new element
    } else {
      ++i;
    }
  }
  return removed_any;
}

}  // namespace

bool scenario_fails(const ScenarioSpec& spec, const Allowlist& allowlist) {
  return !check_scenario(spec, run_all_planes(spec), allowlist).clean();
}

ShrinkResult shrink(const ScenarioSpec& spec, const Allowlist& allowlist,
                    std::size_t max_evals) {
  ShrinkResult result;
  result.spec = spec;
  ++result.evals;
  if (!scenario_fails(result.spec, allowlist)) return result;
  bool progress = true;
  while (progress && result.evals < max_evals) {
    progress = false;
    progress |= shrink_field(result.spec, &ScenarioSpec::events, allowlist,
                             max_evals, result);
    progress |= shrink_field(result.spec, &ScenarioSpec::requests, allowlist,
                             max_evals, result);
    progress |= shrink_field(result.spec, &ScenarioSpec::splits, allowlist,
                             max_evals, result);
    progress |= shrink_field(result.spec, &ScenarioSpec::direct_responses,
                             allowlist, max_evals, result);
  }
  return result;
}

}  // namespace canal::fuzz
