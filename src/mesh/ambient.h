// Ambient-style sidecarless mesh (§2.2): a per-node L4 proxy ("ztunnel")
// plus a per-service shared L7 proxy ("waypoint").
//
// Requests traverse client ztunnel (L4, mTLS originate) -> the destination
// service's waypoint (L7 routing) -> server ztunnel (L4, mTLS terminate).
// Both proxy layers still live inside the user cluster and consume user
// CPU; the control plane manages O(nodes + services) proxies.
#pragma once

#include <memory>

#include "crypto/accelerator.h"
#include "mesh/dataplane.h"
#include "sim/flat_map.h"
#include "sim/rng.h"

namespace canal::mesh {

class AmbientMesh final : public MeshDataplane {
 public:
  struct Config {
    std::size_t ztunnel_cores = 2;
    std::size_t waypoint_cores = 2;
    proxy::ProxyCostModel ztunnel_costs = default_ztunnel_costs();
    proxy::ProxyCostModel waypoint_costs = default_waypoint_costs();
    NetworkProfile network;
    bool mtls = true;

    [[nodiscard]] static proxy::ProxyCostModel default_ztunnel_costs();
    [[nodiscard]] static proxy::ProxyCostModel default_waypoint_costs();
  };

  AmbientMesh(sim::EventLoop& loop, k8s::Cluster& cluster, Config config,
              sim::Rng rng);
  ~AmbientMesh() override;

  /// Creates ztunnels for all nodes and waypoints for all services.
  void install();

  /// Ensures proxies exist for a new pod's node/service and refreshes the
  /// waypoint endpoint pool.
  void on_pod_created(k8s::Pod& pod);

  /// Re-installs route/endpoint config everywhere.
  void reinstall_all();

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ambient";
  }
  void send_request(const RequestOptions& opts, RequestCallback done) override;
  [[nodiscard]] sim::EventLoop& event_loop() noexcept override {
    return loop_;
  }
  [[nodiscard]] std::vector<k8s::ConfigTarget> routing_update_targets()
      const override;
  [[nodiscard]] std::vector<k8s::EpochTarget> config_epoch_targets(
      const EngineApply& apply) const override;
  [[nodiscard]] std::vector<k8s::ConfigTarget> pod_create_targets(
      const std::vector<k8s::Pod*>& new_pods) const override;
  [[nodiscard]] double user_cpu_core_seconds() const override;
  [[nodiscard]] double total_cpu_core_seconds() const override {
    return user_cpu_core_seconds();
  }
  [[nodiscard]] std::size_t proxy_count() const override {
    return ztunnels_.size() + waypoints_.size();
  }

  [[nodiscard]] proxy::ProxyEngine* ztunnel_engine(const k8s::Node& node);
  [[nodiscard]] proxy::ProxyEngine* waypoint_engine(net::ServiceId service);

 protected:
  /// Outlier ejection reaches the service's waypoint (the only L7 LB set
  /// in the ambient path; ztunnels are L4 and hold no endpoint pools).
  void apply_endpoint_health(net::ServiceId service,
                             std::uint64_t endpoint_key,
                             bool healthy) override;
  [[nodiscard]] std::size_t service_endpoint_total(
      net::ServiceId service) const override;

 private:
  struct Ztunnel {
    explicit Ztunnel(sim::EventLoop& loop, std::size_t cores)
        : cpu(loop, cores) {}
    sim::CpuSet cpu;
    std::unique_ptr<crypto::AsymmetricAccelerator> accel;
    std::unique_ptr<proxy::ProxyEngine> engine;
  };
  struct Waypoint {
    explicit Waypoint(sim::EventLoop& loop, std::size_t cores)
        : cpu(loop, cores) {}
    sim::CpuSet cpu;
    std::unique_ptr<crypto::AsymmetricAccelerator> accel;
    std::unique_ptr<proxy::ProxyEngine> engine;
    const k8s::Node* host = nullptr;
  };

  Ztunnel& ztunnel_for(const k8s::Node& node);
  Waypoint& waypoint_for(const k8s::Service& service);
  [[nodiscard]] std::size_t ztunnel_config_bytes() const;

  sim::EventLoop& loop_;
  k8s::Cluster& cluster_;
  Config config_;
  sim::Rng rng_;
  // Flat tables (DESIGN.md §14): ztunnel/waypoint lookup is per-request.
  // Ordered so config-push target lists and CPU sums iterate in a fixed
  // key order.
  sim::FlatOrderedMap<const k8s::Node*, std::unique_ptr<Ztunnel>> ztunnels_;
  sim::FlatOrderedMap<net::ServiceId, std::unique_ptr<Waypoint>> waypoints_;
  std::size_t waypoint_placement_cursor_ = 0;
  std::uint16_t next_port_ = 20000;
};

}  // namespace canal::mesh
