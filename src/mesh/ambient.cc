#include "mesh/ambient.h"

namespace canal::mesh {

proxy::ProxyCostModel AmbientMesh::Config::default_ztunnel_costs() {
  proxy::ProxyCostModel costs;
  // Lightweight Rust L4 proxy, but still redirected via iptables/ipset.
  costs.l4_forward = sim::microseconds(8);
  costs.kernel_pass = sim::microseconds(12);
  return costs;
}

proxy::ProxyCostModel AmbientMesh::Config::default_waypoint_costs() {
  proxy::ProxyCostModel costs;
  // Waypoint is an Envoy with a slimmer chain than a full sidecar.
  costs.l7_process = sim::microseconds(450);
  costs.l7_response_process = sim::microseconds(230);
  return costs;
}

AmbientMesh::AmbientMesh(sim::EventLoop& loop, k8s::Cluster& cluster,
                         Config config, sim::Rng rng)
    : loop_(loop), cluster_(cluster), config_(config), rng_(rng) {}

AmbientMesh::~AmbientMesh() = default;

AmbientMesh::Ztunnel& AmbientMesh::ztunnel_for(const k8s::Node& node) {
  auto& slot = ztunnels_[&node];
  if (!slot) {
    slot = std::make_unique<Ztunnel>(loop_, config_.ztunnel_cores);
    slot->accel = std::make_unique<crypto::AsymmetricAccelerator>(
        loop_, slot->cpu, crypto::AccelMode::kSoftware,
        config_.ztunnel_costs.crypto);
    proxy::ProxyEngine::Config engine_config;
    engine_config.name = "ztunnel-" + std::to_string(net::id_value(node.id()));
    engine_config.l7 = false;
    engine_config.redirect = proxy::RedirectMode::kIptables;
    engine_config.mtls = config_.mtls;
    engine_config.costs = config_.ztunnel_costs;
    engine_config.off_path_fraction = 0.2;
    slot->engine = std::make_unique<proxy::ProxyEngine>(
        loop_, slot->cpu, engine_config, rng_.fork());
    slot->engine->set_handshake_executor(
        [accel = slot->accel.get()](std::function<void()> done) {
          accel->submit(std::move(done));
        });
  }
  return *slot;
}

AmbientMesh::Waypoint& AmbientMesh::waypoint_for(const k8s::Service& service) {
  auto& slot = waypoints_[service.id];
  if (!slot) {
    slot = std::make_unique<Waypoint>(loop_, config_.waypoint_cores);
    slot->accel = std::make_unique<crypto::AsymmetricAccelerator>(
        loop_, slot->cpu, crypto::AccelMode::kSoftware,
        config_.waypoint_costs.crypto);
    const auto& nodes = cluster_.nodes();
    slot->host = nodes.empty()
                     ? nullptr
                     : nodes[waypoint_placement_cursor_++ % nodes.size()].get();
    proxy::ProxyEngine::Config engine_config;
    engine_config.name = "waypoint-" + std::to_string(net::id_value(service.id));
    engine_config.l7 = true;
    engine_config.redirect = proxy::RedirectMode::kNone;
    engine_config.mtls = config_.mtls;
    engine_config.costs = config_.waypoint_costs;
    engine_config.off_path_fraction = 0.3;
    slot->engine = std::make_unique<proxy::ProxyEngine>(
        loop_, slot->cpu, engine_config, rng_.fork());
    slot->engine->set_handshake_executor(
        [accel = slot->accel.get()](std::function<void()> done) {
          accel->submit(std::move(done));
        });
    install_service_config(*slot->engine, service);
  }
  return *slot;
}

void AmbientMesh::install() {
  for (const auto& node : cluster_.nodes()) {
    Ztunnel& zt = ztunnel_for(*node);
    // Ztunnel L4 forwarding targets: each service's waypoint.
    for (const auto& service : cluster_.services()) {
      Waypoint& wp = waypoint_for(*service);
      const std::string cluster_name = service_cluster_name(service->id);
      zt.engine->clusters().remove_cluster(cluster_name);
      auto& upstream = zt.engine->clusters().add_cluster(cluster_name);
      upstream.add_endpoint(
          net::Endpoint{wp.host != nullptr ? wp.host->ip() : net::Ipv4Addr{},
                        15008},
          net::id_value(service->id));
    }
  }
}

void AmbientMesh::on_pod_created(k8s::Pod& pod) {
  ztunnel_for(pod.node());
  k8s::Service* service = cluster_.find_service(pod.service());
  if (service != nullptr) {
    Waypoint& wp = waypoint_for(*service);
    refresh_endpoints(*wp.engine, *service);
  }
  install();
}

void AmbientMesh::reinstall_all() {
  for (auto& [id, wp] : waypoints_) {
    const k8s::Service* service =
        const_cast<k8s::Cluster&>(cluster_).find_service(id);
    if (service != nullptr) install_service_config(*wp->engine, *service);
  }
  install();
}

proxy::ProxyEngine* AmbientMesh::ztunnel_engine(const k8s::Node& node) {
  const auto it = ztunnels_.find(&node);
  return it == ztunnels_.end() ? nullptr : it->second->engine.get();
}

proxy::ProxyEngine* AmbientMesh::waypoint_engine(net::ServiceId service) {
  const auto it = waypoints_.find(service);
  return it == waypoints_.end() ? nullptr : it->second->engine.get();
}

void AmbientMesh::apply_endpoint_health(net::ServiceId service,
                                        std::uint64_t endpoint_key,
                                        bool healthy) {
  proxy::ProxyEngine* waypoint = waypoint_engine(service);
  if (waypoint == nullptr) return;
  if (proxy::UpstreamCluster* c =
          waypoint->clusters().find(service_cluster_name(service))) {
    c->set_endpoint_health(endpoint_key, healthy);
  }
}

std::size_t AmbientMesh::service_endpoint_total(net::ServiceId service) const {
  const k8s::Service* obj = cluster_.find_service(service);
  return obj != nullptr ? obj->endpoints.size() : 0;
}

void AmbientMesh::send_request(const RequestOptions& opts,
                               RequestCallback done) {
  struct State {
    http::Request req;
    net::FiveTuple tuple;
    sim::TimePoint start = 0;
    RequestOptions opts;
    RequestCallback done;
    proxy::ProxyEngine* client_zt = nullptr;
    proxy::ProxyEngine* waypoint = nullptr;
    proxy::ProxyEngine* server_zt = nullptr;
    const k8s::Node* waypoint_host = nullptr;
    proxy::UpstreamEndpoint* endpoint = nullptr;
    k8s::Pod* target = nullptr;
    std::shared_ptr<telemetry::Trace> trace;
    [[nodiscard]] telemetry::Trace* tracer() const { return trace.get(); }
  };
  auto st = std::make_shared<State>();
  st->start = loop_.now();
  st->opts = opts;
  st->done = std::move(done);
  const net::TenantId tenant = effective_tenant(opts);
  if (opts.trace) {
    st->trace = std::make_shared<telemetry::Trace>();
    st->trace->set_tenant(tenant);
  }
  if (opts.client == nullptr) {
    // Malformed request: no originating pod. Fail fast instead of
    // dereferencing null below.
    RequestResult result;
    result.status = 400;
    result.tenant = tenant;
    result.trace = st->trace;
    st->done(result);
    return;
  }
  st->req = build_request(opts);
  const std::uint16_t src_port =
      opts.src_port != 0 ? opts.src_port : next_port_++;
  st->tuple = net::FiveTuple{opts.client->ip(), service_vip(opts.dst_service),
                             src_port, 80, net::Protocol::kTcp};
  if (next_port_ < 20000) next_port_ = 20000;

  auto finish = [this, st, tenant](int status) {
    if (st->endpoint != nullptr && st->endpoint->active_requests > 0) {
      --st->endpoint->active_requests;
    }
    if (st->opts.close_after) {
      if (st->client_zt) st->client_zt->close_connection(st->tuple);
      if (st->waypoint) st->waypoint->close_connection(st->tuple);
      if (st->server_zt) st->server_zt->close_connection(st->tuple);
    }
    RequestResult result;
    result.status = status;
    result.latency = loop_.now() - st->start;
    if (st->target != nullptr) result.served_by = st->target->id();
    result.tenant = tenant;
    result.trace = st->trace;
    st->done(result);
  };

  if (cluster_.find_service(opts.dst_service) == nullptr) {
    // Unknown destination service: 404, matching every other dataplane
    // (a missing waypoint for a service that exists stays a 500 below).
    finish(404);
    return;
  }
  const auto zt_it = ztunnels_.find(&opts.client->node());
  const auto wp_it = waypoints_.find(opts.dst_service);
  if (zt_it == ztunnels_.end() || wp_it == waypoints_.end()) {
    finish(500);
    return;
  }
  st->client_zt = zt_it->second->engine.get();
  st->waypoint = wp_it->second->engine.get();
  st->waypoint_host = wp_it->second->host;

  if (config_.network.dropped(rng_, st->start)) {
    // Lost on the wire: `done` never fires; only a per-try timeout in the
    // retry layer recovers.
    return;
  }

  // L4 hop through the client-node ztunnel (mTLS originate).
  st->client_zt->handle_request(
      st->tuple, opts.dst_service, opts.new_connection, st->req,
      [this, st, finish](proxy::ProxyEngine::RequestOutcome outcome) mutable {
        if (!outcome.ok) {
          finish(outcome.status);
          return;
        }
        const sim::Duration hop1 = config_.network.hop_at(
            st->opts.client->node(), *st->waypoint_host, loop_.now());
        const sim::TimePoint wire1 = loop_.now();
        loop_.post(hop1, [this, st, finish, wire1]() mutable {
          if (st->trace) {
            st->trace->add("link/client-waypoint", telemetry::Component::kLink,
                           wire1, loop_.now(), 0, st->req.wire_size());
          }
          // L7 routing at the shared waypoint.
          st->waypoint->handle_request(
              st->tuple, st->opts.dst_service, st->opts.new_connection,
              st->req,
              [this, st,
               finish](proxy::ProxyEngine::RequestOutcome outcome) mutable {
                if (!outcome.ok) {
                  finish(outcome.status);
                  return;
                }
                if (outcome.endpoint == nullptr) {
                  // 2xx/3xx direct response answered by the waypoint: no
                  // upstream endpoint, nothing further to forward.
                  finish(outcome.status);
                  return;
                }
                st->endpoint = outcome.endpoint;
                st->target = cluster_.find_pod(
                    static_cast<net::PodId>(outcome.endpoint->key));
                if (st->target == nullptr || !st->target->ready()) {
                  finish(503);
                  return;
                }
                st->server_zt = ztunnel_for(st->target->node()).engine.get();
                const sim::Duration hop2 = config_.network.hop_at(
                    *st->waypoint_host, st->target->node(), loop_.now());
                const sim::TimePoint wire2 = loop_.now();
                loop_.post(hop2, [this, st, finish, hop2,
                                      wire2]() mutable {
                  if (st->trace) {
                    st->trace->add("link/waypoint-server",
                                   telemetry::Component::kLink, wire2,
                                   loop_.now(), 0, st->req.wire_size());
                  }
                  // L4 termination at the server-node ztunnel.
                  st->server_zt->handle_inbound(
                      st->tuple, st->opts.dst_service,
                      st->opts.new_connection, st->req.wire_size(),
                      [this, st, finish, hop2](bool ok, int status) mutable {
                        if (!ok) {
                          finish(status);
                          return;
                        }
                        const sim::TimePoint app_start = loop_.now();
                        st->target->handle_request(
                            st->req,
                            [this, st, finish, hop2,
                             app_start](http::Response& resp) mutable {
                              if (st->trace) {
                                st->trace->add(
                                    "app/" + std::to_string(net::id_value(
                                                 st->target->id())),
                                    telemetry::Component::kApp, app_start,
                                    loop_.now(), 0, resp.wire_size(),
                                    resp.status);
                              }
                              const std::uint64_t bytes = resp.wire_size();
                              const int status = resp.status;
                              const sim::Duration hop1 =
                                  config_.network.hop_at(
                                      st->opts.client->node(),
                                      *st->waypoint_host, loop_.now());
                              // Response: server zt -> waypoint -> client zt.
                              st->server_zt->handle_response(
                                  st->tuple, bytes,
                                  [this, st, finish, bytes, status, hop1,
                                   hop2]() mutable {
                                    const sim::TimePoint wire3 = loop_.now();
                                    loop_.post(hop2, [this, st, finish,
                                                          bytes, status, hop1,
                                                          wire3]() mutable {
                                      if (st->trace) {
                                        st->trace->add(
                                            "link/server-waypoint",
                                            telemetry::Component::kLink, wire3,
                                            loop_.now(), 0, bytes);
                                      }
                                      st->waypoint->handle_response(
                                          st->tuple, bytes,
                                          [this, st, finish, bytes, status,
                                           hop1]() mutable {
                                            const sim::TimePoint wire4 =
                                                loop_.now();
                                            loop_.post(
                                                hop1,
                                                [this, st, finish, bytes,
                                                 status, wire4]() mutable {
                                                  if (st->trace) {
                                                    st->trace->add(
                                                        "link/waypoint-client",
                                                        telemetry::Component::
                                                            kLink,
                                                        wire4, loop_.now(), 0,
                                                        bytes);
                                                  }
                                                  st->client_zt
                                                      ->handle_response(
                                                          st->tuple, bytes,
                                                          [finish, status]() mutable {
                                                            finish(status);
                                                          },
                                                          st->tracer());
                                                });
                                          },
                                          st->tracer());
                                    });
                                  },
                                  st->tracer());
                            });
                      },
                      st->tracer());
                });
              },
              st->tracer());
        });
      },
      st->tracer());
}

std::size_t AmbientMesh::ztunnel_config_bytes() const {
  // Workload identities for local pods + service->waypoint map.
  return 256 + 64 * cluster_.pod_count() / std::max<std::size_t>(1, ztunnels_.size()) +
         32 * cluster_.services().size();
}

std::vector<k8s::ConfigTarget> AmbientMesh::routing_update_targets() const {
  std::vector<k8s::ConfigTarget> targets;
  // Waypoints receive the full configuration set, like sidecars do — the
  // scoped-config work landed late in Ambient's evolution (paper ref [16]).
  const std::size_t wp_bytes = full_config_bytes(cluster_);
  for (const auto& [id, wp] : waypoints_) {
    targets.push_back(
        {"waypoint-" + std::to_string(net::id_value(id)), wp_bytes});
  }
  const std::size_t zt_bytes = ztunnel_config_bytes();
  for (const auto& [node, zt] : ztunnels_) {
    targets.push_back(
        {"ztunnel-" + std::to_string(net::id_value(node->id())), zt_bytes});
  }
  return targets;
}

std::vector<k8s::EpochTarget> AmbientMesh::config_epoch_targets(
    const EngineApply& apply) const {
  std::vector<k8s::EpochTarget> targets;
  const std::size_t wp_bytes = full_config_bytes(cluster_);
  auto* self = const_cast<AmbientMesh*>(this);
  for (const auto& [id, wp] : waypoints_) {
    const net::ServiceId service = id;
    targets.push_back(
        {{"waypoint-" + std::to_string(net::id_value(service)), wp_bytes},
         [self, service, apply] {
           auto it = self->waypoints_.find(service);
           if (it != self->waypoints_.end()) apply(*it->second->engine);
         }});
  }
  // Ztunnels carry L4 identity/endpoint state only — no route table to
  // install, so their targets cost southbound bandwidth but apply nothing.
  const std::size_t zt_bytes = ztunnel_config_bytes();
  for (const auto& [node, zt] : ztunnels_) {
    targets.push_back(
        {{"ztunnel-" + std::to_string(net::id_value(node->id())), zt_bytes},
         nullptr});
  }
  return targets;
}

std::vector<k8s::ConfigTarget> AmbientMesh::pod_create_targets(
    const std::vector<k8s::Pod*>& new_pods) const {
  // All ztunnels learn the new workload identities; affected services'
  // waypoints get refreshed endpoint sets.
  std::vector<k8s::ConfigTarget> targets;
  const std::size_t zt_bytes = ztunnel_config_bytes();
  for (const auto& [node, zt] : ztunnels_) {
    targets.push_back(
        {"ztunnel-" + std::to_string(net::id_value(node->id())), zt_bytes});
  }
  std::vector<net::ServiceId> affected;
  for (const k8s::Pod* pod : new_pods) {
    if (std::find(affected.begin(), affected.end(), pod->service()) ==
        affected.end()) {
      affected.push_back(pod->service());
    }
  }
  for (const auto service_id : affected) {
    const k8s::Service* service =
        const_cast<k8s::Cluster&>(cluster_).find_service(service_id);
    targets.push_back(
        {"waypoint-" + std::to_string(net::id_value(service_id)),
         service != nullptr ? service_config_bytes(*service) : 512});
  }
  // Ztunnel workload discovery is per-pod: every new pod triggers an
  // individual identity/cert push to its node's ztunnel.
  for (const k8s::Pod* pod : new_pods) {
    targets.push_back(
        {"ztunnel-workload-" + std::to_string(net::id_value(pod->id())),
         1536});
  }
  return targets;
}

double AmbientMesh::user_cpu_core_seconds() const {
  double total = 0.0;
  for (const auto& [node, zt] : ztunnels_) {
    total += zt->cpu.total_busy_core_seconds();
  }
  for (const auto& [id, wp] : waypoints_) {
    total += wp->cpu.total_busy_core_seconds();
  }
  return total;
}

}  // namespace canal::mesh
