#include "mesh/istio.h"

namespace canal::mesh {

proxy::ProxyCostModel IstioMesh::Config::default_sidecar_costs() {
  proxy::ProxyCostModel costs;
  // Full Envoy filter chain with telemetry: heavier per-request L7 work
  // than the slimmed-down waypoint/gateway profiles.
  costs.l7_process = sim::microseconds(900);
  costs.l7_response_process = sim::microseconds(450);
  costs.kernel_pass = sim::microseconds(18);
  costs.context_switch = sim::microseconds(5);
  return costs;
}

IstioMesh::IstioMesh(sim::EventLoop& loop, k8s::Cluster& cluster,
                     Config config, sim::Rng rng)
    : loop_(loop), cluster_(cluster), config_(config), rng_(rng) {}

IstioMesh::~IstioMesh() = default;

IstioMesh::NodePool& IstioMesh::pool_for(const k8s::Node& node) {
  auto& slot = pools_[&node];
  if (!slot) {
    slot = std::make_unique<NodePool>(loop_, config_.sidecar_cores_per_node);
    // Sidecars have no crypto hardware: software asymmetric path.
    slot->accel = std::make_unique<crypto::AsymmetricAccelerator>(
        loop_, slot->cpu, crypto::AccelMode::kSoftware, config_.costs.crypto);
  }
  return *slot;
}

void IstioMesh::add_sidecar(k8s::Pod& pod) {
  NodePool& pool = pool_for(pod.node());
  proxy::ProxyEngine::Config engine_config;
  engine_config.name = "sidecar-" + std::to_string(net::id_value(pod.id()));
  engine_config.l7 = true;
  engine_config.redirect = proxy::RedirectMode::kIptables;
  engine_config.mtls = config_.mtls;
  engine_config.costs = config_.costs;
  // Full sidecar chains do most telemetry/logging work off the request
  // path; it burns CPU without adding serialized latency.
  engine_config.off_path_fraction = 0.66;
  auto engine = std::make_unique<proxy::ProxyEngine>(
      loop_, pool.cpu, engine_config, rng_.fork());
  engine->set_handshake_executor(
      [accel = pool.accel.get()](std::function<void()> done) {
        accel->submit(std::move(done));
      });
  install_full_config(*engine, cluster_);
  sidecars_[pod.id()] = Sidecar{std::move(engine), &pod};
}

void IstioMesh::install() {
  for (const auto& pod : cluster_.pods()) {
    if (pod->phase() != k8s::PodPhase::kTerminated &&
        !sidecars_.contains(pod->id())) {
      add_sidecar(*pod);
    }
  }
}

void IstioMesh::reinstall_all() {
  for (auto& [id, sidecar] : sidecars_) {
    install_full_config(*sidecar.engine, cluster_);
  }
}

proxy::ProxyEngine* IstioMesh::sidecar_engine(net::PodId pod) {
  const auto it = sidecars_.find(pod);
  return it == sidecars_.end() ? nullptr : it->second.engine.get();
}

void IstioMesh::apply_endpoint_health(net::ServiceId service,
                                      std::uint64_t endpoint_key,
                                      bool healthy) {
  const std::string cluster_name = service_cluster_name(service);
  for (auto& [id, sidecar] : sidecars_) {
    if (proxy::UpstreamCluster* c =
            sidecar.engine->clusters().find(cluster_name)) {
      c->set_endpoint_health(endpoint_key, healthy);
    }
  }
}

std::size_t IstioMesh::service_endpoint_total(net::ServiceId service) const {
  const k8s::Service* obj = cluster_.find_service(service);
  return obj != nullptr ? obj->endpoints.size() : 0;
}

void IstioMesh::send_request(const RequestOptions& opts,
                             RequestCallback done) {
  struct State {
    http::Request req;
    net::FiveTuple tuple;
    sim::TimePoint start = 0;
    RequestOptions opts;
    RequestCallback done;
    proxy::ProxyEngine* client_sc = nullptr;
    proxy::ProxyEngine* server_sc = nullptr;
    proxy::UpstreamEndpoint* endpoint = nullptr;
    k8s::Pod* target = nullptr;
    std::shared_ptr<telemetry::Trace> trace;
    [[nodiscard]] telemetry::Trace* tracer() const { return trace.get(); }
  };
  auto st = std::make_shared<State>();
  st->start = loop_.now();
  st->opts = opts;
  st->done = std::move(done);
  const net::TenantId tenant = effective_tenant(opts);
  if (opts.trace) {
    st->trace = std::make_shared<telemetry::Trace>();
    st->trace->set_tenant(tenant);
  }
  if (opts.client == nullptr) {
    // Malformed request: no originating pod. Fail fast instead of
    // dereferencing null below.
    RequestResult result;
    result.status = 400;
    result.tenant = tenant;
    result.trace = st->trace;
    st->done(result);
    return;
  }
  st->req = build_request(opts);
  const std::uint16_t src_port =
      opts.src_port != 0 ? opts.src_port : next_port_++;
  st->tuple = net::FiveTuple{opts.client->ip(), service_vip(opts.dst_service),
                             src_port, 80, net::Protocol::kTcp};
  if (next_port_ < 10000) next_port_ = 10000;

  auto finish = [this, st, tenant](int status) {
    if (st->endpoint != nullptr && st->endpoint->active_requests > 0) {
      --st->endpoint->active_requests;
    }
    if (st->opts.close_after) {
      if (st->client_sc) st->client_sc->close_connection(st->tuple);
      if (st->server_sc) st->server_sc->close_connection(st->tuple);
    }
    RequestResult result;
    result.status = status;
    result.latency = loop_.now() - st->start;
    if (st->target != nullptr) result.served_by = st->target->id();
    result.tenant = tenant;
    result.trace = st->trace;
    st->done(result);
  };

  const auto sc_it = sidecars_.find(opts.client->id());
  if (sc_it == sidecars_.end()) {
    finish(500);
    return;
  }
  st->client_sc = sc_it->second.engine.get();

  if (config_.network.dropped(rng_, st->start)) {
    // Lost on the wire: `done` never fires; only a per-try timeout in the
    // retry layer recovers. One loss draw per attempt keeps runs
    // reproducible for a fixed seed.
    return;
  }

  // Outbound: app -> (iptables) client sidecar: L7 route + endpoint pick.
  st->client_sc->handle_request(
      st->tuple, opts.dst_service, opts.new_connection, st->req,
      [this, st, finish](proxy::ProxyEngine::RequestOutcome outcome) mutable {
        if (!outcome.ok) {
          finish(outcome.status);
          return;
        }
        if (outcome.endpoint == nullptr) {
          // 2xx/3xx direct response answered by the sidecar itself: there
          // is no upstream endpoint and nothing further to forward.
          finish(outcome.status);
          return;
        }
        st->endpoint = outcome.endpoint;
        st->target =
            cluster_.find_pod(static_cast<net::PodId>(outcome.endpoint->key));
        if (st->target == nullptr || !st->target->ready()) {
          finish(503);
          return;
        }
        const auto server_it = sidecars_.find(st->target->id());
        if (server_it == sidecars_.end()) {
          finish(503);
          return;
        }
        st->server_sc = server_it->second.engine.get();
        const sim::Duration hop = config_.network.hop_at(
            st->opts.client->node(), st->target->node(), loop_.now());

        // Wire transit, then inbound through the server-side sidecar.
        const sim::TimePoint wire_out = loop_.now();
        loop_.post(hop, [this, st, finish, hop, wire_out]() mutable {
          if (st->trace) {
            st->trace->add("link/client-server", telemetry::Component::kLink,
                           wire_out, loop_.now(), 0, st->req.wire_size());
          }
          st->server_sc->handle_inbound(
              st->tuple, st->opts.dst_service, st->opts.new_connection,
              st->req.wire_size(),
              [this, st, finish, hop](bool ok, int status) mutable {
                if (!ok) {
                  finish(status);
                  return;
                }
                const sim::TimePoint app_start = loop_.now();
                st->target->handle_request(
                    st->req, [this, st, finish, hop,
                              app_start](http::Response& resp) mutable {
                      if (st->trace) {
                        st->trace->add(
                            "app/" +
                                std::to_string(net::id_value(st->target->id())),
                            telemetry::Component::kApp, app_start, loop_.now(),
                            0, resp.wire_size(), resp.status);
                      }
                      const std::uint64_t resp_bytes = resp.wire_size();
                      const int status = resp.status;
                      // Response: server sidecar -> wire -> client sidecar.
                      st->server_sc->handle_response(
                          st->tuple, resp_bytes,
                          [this, st, finish, hop, resp_bytes, status]() mutable {
                            const sim::TimePoint wire_back = loop_.now();
                            loop_.post(hop, [this, st, finish, resp_bytes,
                                                 status, wire_back]() mutable {
                              if (st->trace) {
                                st->trace->add("link/server-client",
                                               telemetry::Component::kLink,
                                               wire_back, loop_.now(), 0,
                                               resp_bytes);
                              }
                              st->client_sc->handle_response(
                                  st->tuple, resp_bytes,
                                  [finish, status]() mutable {
                                    finish(status);
                                  },
                                  st->tracer());
                            });
                          },
                          st->tracer());
                    });
              },
              st->tracer());
        });
      },
      st->tracer());
}

std::vector<k8s::ConfigTarget> IstioMesh::routing_update_targets() const {
  // Any update -> full config to every sidecar.
  std::vector<k8s::ConfigTarget> targets;
  const std::size_t bytes = full_config_bytes(cluster_);
  targets.reserve(sidecars_.size());
  for (const auto& [id, sidecar] : sidecars_) {
    targets.push_back({"sidecar-" + std::to_string(net::id_value(id)), bytes});
  }
  return targets;
}

std::vector<k8s::EpochTarget> IstioMesh::config_epoch_targets(
    const EngineApply& apply) const {
  // One epoch target per sidecar; the apply thunk resolves the sidecar by
  // pod id at delivery time so a pod killed mid-flight is simply skipped.
  std::vector<k8s::EpochTarget> targets;
  const std::size_t bytes = full_config_bytes(cluster_);
  targets.reserve(sidecars_.size());
  auto* self = const_cast<IstioMesh*>(this);
  for (const auto& [id, sidecar] : sidecars_) {
    const net::PodId pod_id = id;
    targets.push_back(
        {{"sidecar-" + std::to_string(net::id_value(pod_id)), bytes},
         [self, pod_id, apply] {
           auto it = self->sidecars_.find(pod_id);
           if (it != self->sidecars_.end()) apply(*it->second.engine);
         }});
  }
  return targets;
}

std::vector<k8s::ConfigTarget> IstioMesh::pod_create_targets(
    const std::vector<k8s::Pod*>& new_pods) const {
  // New sidecars need the full config; every existing sidecar receives the
  // full set again (Istio pushes complete configurations, §2.1).
  std::vector<k8s::ConfigTarget> targets = routing_update_targets();
  const std::size_t bytes = full_config_bytes(cluster_);
  for (const k8s::Pod* pod : new_pods) {
    if (!sidecars_.contains(pod->id())) {
      targets.push_back(
          {"sidecar-" + std::to_string(net::id_value(pod->id())), bytes});
    }
  }
  return targets;
}

double IstioMesh::user_cpu_core_seconds() const {
  double total = 0.0;
  for (const auto& [node, pool] : pools_) {
    total += pool->cpu.total_busy_core_seconds();
  }
  return total;
}

double IstioMesh::sidecar_utilization(sim::Duration window) const {
  if (pools_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [node, pool] : pools_) {
    sum += pool->cpu.utilization(window);
  }
  return sum / static_cast<double>(pools_.size());
}

}  // namespace canal::mesh
