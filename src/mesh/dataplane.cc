#include "mesh/dataplane.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <unordered_set>

namespace canal::mesh {

std::size_t service_config_bytes(const k8s::Service& service) {
  // Route rules + authz policy + per-endpoint entries. Matches the
  // footprint install_service_config() creates, plus security metadata.
  constexpr std::size_t kRouteBytes = 680;
  constexpr std::size_t kAuthzBytes = 420;
  constexpr std::size_t kPerEndpointBytes = 96;
  return kRouteBytes + kAuthzBytes +
         service.endpoints.size() * kPerEndpointBytes;
}

std::size_t full_config_bytes(const k8s::Cluster& cluster) {
  std::size_t total = 1024;  // bootstrap/listener framing
  for (const auto& service : cluster.services()) {
    total += service_config_bytes(*service);
  }
  return total;
}

std::string service_cluster_name(net::ServiceId id) {
  std::string out;
  append_service_cluster_name(out, id);
  return out;
}

void append_service_cluster_name(std::string& out, net::ServiceId id) {
  out += "service-";
  char digits[20];
  const auto result = std::to_chars(digits, digits + sizeof(digits),
                                    net::id_value(id));
  out.append(digits, result.ptr);
}

net::Ipv4Addr service_vip(net::ServiceId id) {
  // ServiceId is (tenant << 32) | per-tenant counter. The VIP encodes the
  // low 24 counter bits in the 240.0.0.0/8 reserved range, which cannot
  // collide with pod (10/8), gateway-replica (172.16/12) or gateway-VIP
  // (100.64/10) addresses. VIPs deliberately overlap across tenants, like
  // pod IPs: tenants are differentiated by VNI, not by address. Two
  // services of the *same* tenant must never share a VIP, so counters that
  // would wrap the 24-bit field are rejected loudly instead of silently
  // aliasing another service's VIP (the old 16-bit mapping did exactly
  // that for ids >= 2^16).
  const std::uint64_t counter = net::id_value(id) & 0xFFFFFFFFULL;
  if (counter >= (1ULL << 24)) {
    throw std::invalid_argument(
        "service_vip: per-tenant service counter " + std::to_string(counter) +
        " exceeds the 24-bit VIP space (2^24 services per tenant); "
        "widen the VIP encoding before allocating this many services");
  }
  return net::Ipv4Addr(240, static_cast<std::uint8_t>((counter >> 16) & 0xFF),
                       static_cast<std::uint8_t>((counter >> 8) & 0xFF),
                       static_cast<std::uint8_t>(counter & 0xFF));
}

void refresh_endpoints(proxy::ProxyEngine& engine,
                       const k8s::Service& service) {
  // Diff the desired endpoint set against the live one instead of dropping
  // and rebuilding the cluster: a rebuild would reset the round-robin
  // cursor (skewing load every scale event) and invalidate UpstreamEndpoint
  // state (in-flight request counts) mid-run.
  const std::string name = service_cluster_name(service.id);
  auto& cluster =
      engine.clusters().add_cluster(name, proxy::LbPolicy::kRoundRobin);

  std::unordered_set<std::uint64_t> desired;
  desired.reserve(service.endpoints.size());
  for (const k8s::Pod* pod : service.endpoints) {
    const std::uint64_t key = net::id_value(pod->id());
    desired.insert(key);
    if (cluster.find_endpoint(key) == nullptr) {
      cluster.add_endpoint(net::Endpoint{pod->ip(), 8080}, key);
    }
  }

  std::vector<std::uint64_t> stale;
  for (const auto& endpoint : cluster.endpoints()) {
    if (desired.find(endpoint->key) == desired.end()) {
      stale.push_back(endpoint->key);
    }
  }
  for (const std::uint64_t key : stale) cluster.remove_endpoint(key);
}

void install_service_config(proxy::ProxyEngine& engine,
                            const k8s::Service& service) {
  http::RouteTable table;
  http::RouteRule rule;
  rule.name = service.name + "-default";
  rule.match.path_kind = http::RouteMatch::PathKind::kPrefix;
  // Fill-construct rather than assign from a literal: GCC 12's inliner
  // flags the literal path with a spurious -Wrestrict (GCC PR 105329).
  rule.match.path = std::string(1, '/');
  rule.action.clusters.push_back({service_cluster_name(service.id), 1});
  table.add_rule(std::move(rule));
  engine.set_route_table(service.id, std::move(table));
  refresh_endpoints(engine, service);
}

void install_full_config(proxy::ProxyEngine& engine,
                         const k8s::Cluster& cluster) {
  for (const auto& service : cluster.services()) {
    install_service_config(engine, *service);
  }
}

sim::Duration RetryPolicy::backoff_before(std::uint32_t attempt,
                                          sim::Rng& rng) const {
  if (attempt <= 1 || base_backoff <= 0) return 0;
  sim::Duration backoff = base_backoff;
  for (std::uint32_t i = 2; i < attempt; ++i) {
    if (max_backoff > 0 && backoff >= max_backoff) break;
    backoff *= 2;
  }
  if (max_backoff > 0) backoff = std::min(backoff, max_backoff);
  if (jitter > 0.0) {
    const double scale = 1.0 - jitter + jitter * rng.uniform();
    backoff = static_cast<sim::Duration>(static_cast<double>(backoff) * scale);
  }
  return backoff;
}

namespace {

/// Shared state of one logical request moving through retry attempts.
struct RetryState {
  MeshDataplane* mesh = nullptr;
  sim::EventLoop* loop = nullptr;
  RequestOptions opts;
  RetryPolicy policy;
  sim::Rng* rng = nullptr;  ///< borrowed; must outlive the request
  RetryBudget* budget = nullptr;
  proxy::ResilienceChain* chain = nullptr;  ///< owned by the dataplane
  RequestCallback done;
  sim::TimePoint send = 0;
  std::uint32_t attempt = 0;
  net::TenantId tenant{};
  /// Resilience disturbance epoch of the destination service at send;
  /// a change by completion marks the outcome resilience_affected.
  std::uint64_t epoch_at_send = 0;
  bool affected = false;
  std::shared_ptr<telemetry::Trace> merged;  ///< null when tracing is off

  void append_attempt_trace(const telemetry::Trace& attempt_trace) {
    if (!merged) return;
    for (const auto& span : attempt_trace.spans()) {
      merged->add(span.name, span.component, span.start, span.end,
                  span.queue_wait, span.bytes, span.status);
    }
  }

  void finish(const RequestResult& last, bool timed_out) {
    RequestResult result;
    result.status = last.status;
    result.latency = loop->now() - send;
    result.served_by = last.served_by;
    result.attempts = attempt;
    result.timed_out = timed_out;
    result.tenant = tenant;
    result.trace = merged;
    if (chain != nullptr) {
      result.resilience_affected =
          affected ||
          chain->disturbance_epoch(opts.dst_service) != epoch_at_send ||
          chain->disturbed(opts.dst_service);
    }
    done(result);
  }

  /// Feeds one completed attempt into the breaker/outlier stages.
  void feed_chain(net::PodId served_by, int status) {
    if (chain == nullptr) return;
    chain->on_attempt_result(opts.dst_service, net::id_value(served_by),
                             status);
  }
};

void run_attempt(std::shared_ptr<RetryState> st);

/// Classifies `result` (produced at loop->now()): either it ends the
/// request, or — retryable status, attempts left, budget admits — the next
/// attempt is scheduled after backoff.
void settle_attempt(const std::shared_ptr<RetryState>& st,
                    const RequestResult& result, bool timed_out) {
  bool want_retry = st->policy.retryable(result.status) &&
                    st->attempt < st->policy.max_attempts;
  if (want_retry && st->chain != nullptr &&
      !st->chain->attempt_allowed(st->opts.dst_service)) {
    // The breaker opened under us: don't retry into an open breaker; the
    // current result stands and the outcome is marked affected.
    want_retry = false;
    st->affected = true;
  }
  const bool admitted =
      want_retry && (st->budget == nullptr || st->budget->try_acquire());
  if (!admitted) {
    st->finish(result, timed_out);
    return;
  }
  const sim::Duration wait =
      st->policy.backoff_before(st->attempt + 1, *st->rng);
  const sim::TimePoint wait_start = st->loop->now();
  st->loop->post(wait, [st, wait_start]() {
    if (st->merged && st->loop->now() > wait_start) {
      st->merged->add("retry/backoff", telemetry::Component::kRetry,
                      wait_start, st->loop->now());
    }
    run_attempt(st);
  });
}

void run_attempt(std::shared_ptr<RetryState> st) {
  ++st->attempt;
  const sim::TimePoint attempt_start = st->loop->now();
  // First writer wins: either the dataplane's completion or the per-try
  // timeout. The loser finds `*settled` set and backs off.
  auto settled = std::make_shared<bool>(false);
  auto timeout = std::make_shared<sim::EventHandle>();

  if (st->policy.per_try_timeout > 0) {
    *timeout = st->loop->schedule(
        st->policy.per_try_timeout, [st, settled, attempt_start]() {
          if (*settled) return;
          *settled = true;
          if (st->merged) {
            // The abandoned attempt's own spans never arrive; one kRetry
            // span covers its window so the merged trace stays gapless.
            st->merged->add(
                "retry/timeout-attempt-" + std::to_string(st->attempt),
                telemetry::Component::kRetry, attempt_start, st->loop->now(),
                0, 0, 504);
          }
          st->feed_chain(net::PodId{}, 504);
          RequestResult timed_out;
          timed_out.status = 504;
          timed_out.timed_out = true;
          settle_attempt(st, timed_out, /*timed_out=*/true);
        });
  }

  st->mesh->send_request(st->opts, [st, settled,
                                    timeout](RequestResult result) {
    if (*settled) return;  // attempt already abandoned by the timeout
    *settled = true;
    timeout->cancel();
    if (result.trace) st->append_attempt_trace(*result.trace);
    st->feed_chain(result.served_by, result.status);
    settle_attempt(st, result, /*timed_out=*/false);
  });
}

}  // namespace

void MeshDataplane::enable_resilience(const proxy::ResilienceConfig& config) {
  proxy::ResilienceChain::Hooks hooks;
  hooks.set_endpoint_health = [this](net::ServiceId service,
                                     std::uint64_t key, bool healthy) {
    apply_endpoint_health(service, key, healthy);
  };
  hooks.endpoint_total = [this](net::ServiceId service) {
    return service_endpoint_total(service);
  };
  hooks.loop = &event_loop();
  resilience_ =
      std::make_unique<proxy::ResilienceChain>(config, std::move(hooks));
}

std::vector<k8s::EpochTarget> MeshDataplane::config_epoch_targets(
    const EngineApply&) const {
  std::vector<k8s::EpochTarget> targets;
  for (auto& target : routing_update_targets()) {
    targets.push_back({std::move(target), nullptr});
  }
  return targets;
}

void MeshDataplane::apply_endpoint_health(net::ServiceId, std::uint64_t,
                                          bool) {}

std::size_t MeshDataplane::service_endpoint_total(net::ServiceId) const {
  return 0;
}

void MeshDataplane::send_request_with_retries(const RequestOptions& opts,
                                              const RetryPolicy& policy,
                                              sim::Rng& rng,
                                              RequestCallback done,
                                              RetryBudget* budget) {
  if (resilience_ != nullptr) {
    const proxy::ResilienceChain::Admission admission =
        resilience_->admit(effective_tenant(opts), opts.dst_service);
    if (!admission.admitted) {
      // Synchronous fast-fail before any attempt: 429 from the tenant's
      // token bucket or 503 from an open breaker. attempts = 0 records
      // that the dataplane was never entered; the (empty) trace still
      // tiles its zero-length [send, send] window.
      RequestResult result;
      result.status = admission.status;
      result.tenant = effective_tenant(opts);
      result.attempts = 0;
      result.rate_limited = admission.rate_limited;
      result.resilience_affected = !admission.rate_limited;
      if (opts.trace) {
        result.trace = std::make_shared<telemetry::Trace>();
        result.trace->set_tenant(result.tenant);
      }
      done(result);
      return;
    }
  }
  auto st = std::make_shared<RetryState>();
  st->mesh = this;
  st->loop = &event_loop();
  st->opts = opts;
  st->policy = policy;
  st->rng = &rng;
  st->budget = budget;
  st->done = std::move(done);
  st->send = st->loop->now();
  st->tenant = effective_tenant(opts);
  st->chain = resilience_.get();
  if (st->chain != nullptr) {
    st->epoch_at_send = st->chain->disturbance_epoch(opts.dst_service);
    st->affected = st->chain->disturbed(opts.dst_service);
  }
  if (opts.trace) {
    st->merged = std::make_shared<telemetry::Trace>();
    st->merged->set_tenant(st->tenant);
  }
  if (budget != nullptr) budget->on_request();
  run_attempt(std::move(st));
}

http::Request build_request(const RequestOptions& opts) {
  http::Request req;
  build_request_into(opts, req);
  return req;
}

void build_request_into(const RequestOptions& opts, http::Request& req) {
  req.method = opts.method;
  req.path = opts.path;
  // Drop headers a previous use of a pooled request left behind. Host and
  // Content-Length are overwritten below; anything else is stale. set()'s
  // remove+add churn stays allocation-free: header names/values here are
  // short enough for the small-string buffer and the entries vector keeps
  // its capacity.
  while (true) {
    const auto& entries = req.headers.entries();
    const auto stale = std::find_if(
        entries.begin(), entries.end(), [](const auto& entry) {
          return !http::iequals(entry.first, "Host") &&
                 !http::iequals(entry.first, "Content-Length");
        });
    if (stale == entries.end()) break;
    const std::string name = stale->first;  // remove() invalidates the entry
    req.headers.remove(name);
  }
  std::string& host = req.headers.value_slot("Host");
  host.clear();
  append_service_cluster_name(host, opts.dst_service);
  for (const auto& [name, value] : opts.headers) {
    req.headers.add(name, value);
  }
  if (opts.request_bytes > 0) {
    req.body.assign(opts.request_bytes, 'q');
    req.headers.set("Content-Length", std::to_string(opts.request_bytes));
  } else {
    req.body.clear();
    req.headers.remove("Content-Length");
  }
}

void NoMesh::apply_endpoint_health(net::ServiceId, std::uint64_t endpoint_key,
                                   bool healthy) {
  if (healthy) {
    ejected_.erase(endpoint_key);
  } else {
    ejected_.insert(endpoint_key);
  }
}

std::size_t NoMesh::service_endpoint_total(net::ServiceId service) const {
  const k8s::Service* obj = cluster_.find_service(service);
  return obj != nullptr ? obj->endpoints.size() : 0;
}

void NoMesh::send_request(const RequestOptions& opts, RequestCallback done) {
  const sim::TimePoint start = loop_.now();
  const net::TenantId tenant = effective_tenant(opts);
  auto trace =
      opts.trace ? std::make_shared<telemetry::Trace>() : nullptr;
  if (trace) trace->set_tenant(tenant);
  auto finish = [this, start, tenant, trace, done = std::move(done)](
                    int status, net::PodId served_by) {
    RequestResult result;
    result.status = status;
    result.latency = loop_.now() - start;
    result.served_by = served_by;
    result.tenant = tenant;
    result.trace = trace;
    done(result);
  };
  if (opts.client == nullptr) {
    finish(400, net::PodId{});
    return;
  }
  k8s::Service* service = cluster_.find_service(opts.dst_service);
  if (service == nullptr) {
    finish(404, net::PodId{});
    return;
  }
  auto endpoints = service->ready_endpoints();
  if (!ejected_.empty()) {
    std::erase_if(endpoints, [this](const k8s::Pod* pod) {
      return ejected_.contains(net::id_value(pod->id()));
    });
  }
  if (endpoints.empty()) {
    finish(503, net::PodId{});
    return;
  }
  if (net_.dropped(rng_, start)) {
    // The request is lost on the wire: `done` never fires. Only a per-try
    // timeout in the retry layer recovers from this.
    return;
  }
  k8s::Pod* target = endpoints[rr_++ % endpoints.size()];
  const sim::Duration hop =
      net_.hop_at(opts.client->node(), target->node(), start);
  auto req = std::make_shared<http::Request>(build_request(opts));
  loop_.post(hop, [this, req, target, hop, trace, start,
                       finish = std::move(finish)]() mutable {
    if (trace) {
      trace->add("link/client-server", telemetry::Component::kLink, start,
                 loop_.now());
    }
    const sim::TimePoint app_start = loop_.now();
    target->handle_request(*req, [this, req, target, hop, trace, app_start,
                                  finish = std::move(finish)](
                                     http::Response& resp) mutable {
      if (trace) {
        trace->add("app/" + std::to_string(net::id_value(target->id())),
                   telemetry::Component::kApp, app_start, loop_.now(), 0,
                   resp.wire_size(), resp.status);
      }
      const sim::TimePoint back_start = loop_.now();
      loop_.post(hop, [this, trace, back_start,
                           finish = std::move(finish), status = resp.status,
                           id = target->id()]() mutable {
        if (trace) {
          trace->add("link/server-client", telemetry::Component::kLink,
                     back_start, loop_.now());
        }
        finish(status, id);
      });
    });
  });
}

}  // namespace canal::mesh
