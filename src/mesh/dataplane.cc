#include "mesh/dataplane.h"

namespace canal::mesh {

std::size_t service_config_bytes(const k8s::Service& service) {
  // Route rules + authz policy + per-endpoint entries. Matches the
  // footprint install_service_config() creates, plus security metadata.
  constexpr std::size_t kRouteBytes = 680;
  constexpr std::size_t kAuthzBytes = 420;
  constexpr std::size_t kPerEndpointBytes = 96;
  return kRouteBytes + kAuthzBytes +
         service.endpoints.size() * kPerEndpointBytes;
}

std::size_t full_config_bytes(const k8s::Cluster& cluster) {
  std::size_t total = 1024;  // bootstrap/listener framing
  for (const auto& service : cluster.services()) {
    total += service_config_bytes(*service);
  }
  return total;
}

std::string service_cluster_name(net::ServiceId id) {
  return "service-" + std::to_string(net::id_value(id));
}

net::Ipv4Addr service_vip(net::ServiceId id) {
  const auto v = net::id_value(id);
  return net::Ipv4Addr(10, 255, static_cast<std::uint8_t>((v >> 8) & 0xFF),
                       static_cast<std::uint8_t>(v & 0xFF));
}

void refresh_endpoints(proxy::ProxyEngine& engine,
                       const k8s::Service& service) {
  const std::string name = service_cluster_name(service.id);
  engine.clusters().remove_cluster(name);
  auto& cluster =
      engine.clusters().add_cluster(name, proxy::LbPolicy::kRoundRobin);
  for (const k8s::Pod* pod : service.endpoints) {
    cluster.add_endpoint(net::Endpoint{pod->ip(), 8080},
                         net::id_value(pod->id()));
  }
}

void install_service_config(proxy::ProxyEngine& engine,
                            const k8s::Service& service) {
  http::RouteTable table;
  http::RouteRule rule;
  rule.name = service.name + "-default";
  rule.match.path_kind = http::RouteMatch::PathKind::kPrefix;
  // Fill-construct rather than assign from a literal: GCC 12's inliner
  // flags the literal path with a spurious -Wrestrict (GCC PR 105329).
  rule.match.path = std::string(1, '/');
  rule.action.clusters.push_back({service_cluster_name(service.id), 1});
  table.add_rule(std::move(rule));
  engine.set_route_table(service.id, std::move(table));
  refresh_endpoints(engine, service);
}

void install_full_config(proxy::ProxyEngine& engine,
                         const k8s::Cluster& cluster) {
  for (const auto& service : cluster.services()) {
    install_service_config(engine, *service);
  }
}

http::Request build_request(const RequestOptions& opts) {
  http::Request req;
  req.method = opts.method;
  req.path = opts.path;
  req.headers.set("Host", service_cluster_name(opts.dst_service));
  for (const auto& [name, value] : opts.headers) {
    req.headers.add(name, value);
  }
  if (opts.request_bytes > 0) {
    req.body.assign(opts.request_bytes, 'q');
    req.headers.set("Content-Length", std::to_string(opts.request_bytes));
  }
  return req;
}

void NoMesh::send_request(const RequestOptions& opts, RequestCallback done) {
  const sim::TimePoint start = loop_.now();
  k8s::Service* service = cluster_.find_service(opts.dst_service);
  auto trace =
      opts.trace ? std::make_shared<telemetry::Trace>() : nullptr;
  auto finish = [this, start, trace, done = std::move(done)](
                    int status, net::PodId served_by) {
    RequestResult result;
    result.status = status;
    result.latency = loop_.now() - start;
    result.served_by = served_by;
    result.trace = trace;
    done(result);
  };
  if (service == nullptr) {
    finish(404, net::PodId{});
    return;
  }
  const auto endpoints = service->ready_endpoints();
  if (endpoints.empty()) {
    finish(503, net::PodId{});
    return;
  }
  k8s::Pod* target = endpoints[rr_++ % endpoints.size()];
  const sim::Duration hop = net_.hop(opts.client->node(), target->node());
  auto req = std::make_shared<http::Request>(build_request(opts));
  loop_.schedule(hop, [this, req, target, hop, trace, start,
                       finish = std::move(finish)]() mutable {
    if (trace) {
      trace->add("link/client-server", telemetry::Component::kLink, start,
                 loop_.now());
    }
    const sim::TimePoint app_start = loop_.now();
    target->handle_request(*req, [this, req, target, hop, trace, app_start,
                                  finish = std::move(finish)](
                                     http::Response resp) mutable {
      if (trace) {
        trace->add("app/" + std::to_string(net::id_value(target->id())),
                   telemetry::Component::kApp, app_start, loop_.now(), 0,
                   resp.wire_size(), resp.status);
      }
      const sim::TimePoint back_start = loop_.now();
      loop_.schedule(hop, [this, trace, back_start,
                           finish = std::move(finish), status = resp.status,
                           id = target->id()]() mutable {
        if (trace) {
          trace->add("link/server-client", telemetry::Component::kLink,
                     back_start, loop_.now());
        }
        finish(status, id);
      });
    });
  });
}

}  // namespace canal::mesh
