// Common mesh-dataplane interface shared by the NoMesh/Istio/Ambient
// baselines and the Canal architecture (src/canal).
//
// Each architecture composes the same proxy engine (src/proxy) into a
// different topology; this interface lets the benchmark harness drive any
// of them identically (Figs 10/11/13/14/15).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "http/message.h"
#include "k8s/cluster.h"
#include "k8s/controller.h"
#include "k8s/propagation.h"
#include "net/flow.h"
#include "net/ids.h"
#include "proxy/engine.h"
#include "proxy/resilience.h"
#include "sim/fault.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "telemetry/trace.h"

namespace canal::mesh {

/// Latency profile of the underlying network fabric, plus an optional
/// fault schedule that degrades it (loss / latency spikes) during windows.
struct NetworkProfile {
  sim::Duration intra_node = sim::microseconds(20);
  sim::Duration intra_az = sim::microseconds(100);
  sim::Duration cross_az = sim::microseconds(500);
  /// Not owned; when set, link hops honour its loss/latency windows.
  const sim::FaultPlan* faults = nullptr;

  /// One-way transit between two nodes (fault-free baseline).
  [[nodiscard]] sim::Duration hop(const k8s::Node& a, const k8s::Node& b) const {
    if (&a == &b) return intra_node;
    return a.az() == b.az() ? intra_az : cross_az;
  }

  /// One-way transit at simulated time `now`, including any active
  /// latency-spike windows from the fault plan.
  [[nodiscard]] sim::Duration hop_at(const k8s::Node& a, const k8s::Node& b,
                                     sim::TimePoint now) const {
    return hop(a, b) + fault_latency(now);
  }

  /// Extra per-hop latency injected by the fault plan at `now`.
  [[nodiscard]] sim::Duration fault_latency(sim::TimePoint now) const {
    return faults != nullptr ? faults->extra_link_latency_at(now) : 0;
  }

  /// Draws one loss decision for a request entering the fabric at `now`.
  /// A dropped request vanishes — the caller's completion never fires, so
  /// only a per-try timeout (RetryPolicy) can recover from it.
  [[nodiscard]] bool dropped(sim::Rng& rng, sim::TimePoint now) const {
    if (faults == nullptr) return false;
    const double loss = faults->link_loss_at(now);
    return loss > 0.0 && rng.chance(loss);
  }
};

struct RequestOptions {
  k8s::Pod* client = nullptr;
  net::ServiceId dst_service{};
  /// Tenant the request is issued on behalf of. The default (id 0) means
  /// "derive from the client pod's tenant" — see effective_tenant(). Set
  /// explicitly to model gateway-style traffic where one client cluster
  /// fronts several tenants.
  net::TenantId tenant{};
  std::string path = "/";
  http::Method method = http::Method::kGet;
  std::vector<std::pair<std::string, std::string>> headers;
  std::uint32_t request_bytes = 256;
  /// New connection => handshake costs on every mTLS hop.
  bool new_connection = true;
  /// Client source port for the request's 5-tuple. 0 (the default) lets
  /// the dataplane allocate a fresh ephemeral port, so every request is a
  /// distinct flow. Pinning a port (with new_connection=false and
  /// close_after=false on repeats) models repeat requests on an
  /// established connection — the flow the fastpath caches key on.
  std::uint16_t src_port = 0;
  /// Tear down connection state after the response.
  bool close_after = true;
  /// Collect a per-hop Trace for this request (opt-in: the hot path stays
  /// allocation-free when false). The trace arrives on RequestResult.
  bool trace = false;
};

struct RequestResult {
  int status = 0;
  sim::Duration latency = 0;
  net::PodId served_by{};
  /// Tenant the request ran under (effective_tenant of its options) —
  /// every dataplane stamps this, so per-tenant accounting needs no
  /// side-channel. Also stamped on the trace when tracing.
  net::TenantId tenant{};
  /// Attempts made to produce this result (1 = no retries). Only the
  /// retry layer (send_request_with_retries) ever sets this above 1.
  std::uint32_t attempts = 1;
  /// True when the final attempt was abandoned by the per-try timeout
  /// (status 504) rather than answered by the dataplane.
  bool timed_out = false;
  /// True when the per-tenant rate limiter rejected the request (429,
  /// attempts == 0). Rate-limit decisions depend only on the logical
  /// request arrival schedule, so they are identical across dataplanes
  /// and compared strictly by the differential oracle.
  bool rate_limited = false;
  /// True when breaker/ejection state influenced this outcome: a breaker
  /// fast-fail, or any breaker/outlier transition for the destination
  /// service between send and completion (disturbance-epoch change), or
  /// non-closed breaker / active ejection at either end. Such outcomes
  /// depend on attempt-completion timing and are plane-divergent — the
  /// oracle exempts them under the resilience-window allowlist entry.
  bool resilience_affected = false;
  /// Populated iff RequestOptions.trace was set: ordered spans whose
  /// durations tile [send, done] — they sum exactly to `latency`.
  std::shared_ptr<telemetry::Trace> trace;
  [[nodiscard]] bool ok() const noexcept {
    return status >= 200 && status < 400;
  }
};

using RequestCallback = std::function<void(RequestResult)>;

/// The tenant a request actually runs under: opts.tenant when set (id
/// != 0), else the client pod's tenant, else untenanted.
[[nodiscard]] inline net::TenantId effective_tenant(
    const RequestOptions& opts) noexcept {
  if (net::id_value(opts.tenant) != 0) return opts.tenant;
  return opts.client != nullptr ? opts.client->tenant() : net::TenantId{};
}

/// Client-side retry/timeout policy, applied identically on top of any
/// dataplane by MeshDataplane::send_request_with_retries. Backoff is capped
/// exponential with deterministic jitter drawn from the caller's Rng, so a
/// fixed seed reproduces the exact retry schedule.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  std::uint32_t max_attempts = 3;
  /// Abandon an attempt (classify as 504) after this long; 0 disables.
  sim::Duration per_try_timeout = 0;
  /// Backoff before attempt k (k >= 2) is base * 2^(k-2), capped.
  sim::Duration base_backoff = sim::milliseconds(1);
  sim::Duration max_backoff = sim::milliseconds(50);
  /// Fraction of the backoff randomized: wait = backoff * (1 - jitter +
  /// jitter * u), u ~ U[0,1). 0 = fixed schedule.
  double jitter = 0.5;

  /// Statuses worth another attempt: upstream connect failure (502), no
  /// healthy endpoint / overload (503), per-try timeout (504).
  [[nodiscard]] bool retryable(int status) const noexcept {
    return status == 502 || status == 503 || status == 504;
  }

  /// Backoff wait before attempt `attempt` (2-based; attempt 1 never
  /// waits). Deterministic given the Rng state.
  [[nodiscard]] sim::Duration backoff_before(std::uint32_t attempt,
                                             sim::Rng& rng) const;
};

/// Shared retry-rate limiter (Envoy-style budget): retries are admitted
/// while outstanding retries stay within `ratio` of recent requests plus a
/// fixed `burst` floor. Prevents retry storms from amplifying an outage.
class RetryBudget {
 public:
  explicit RetryBudget(double ratio = 0.2, std::uint32_t burst = 3)
      : ratio_(ratio), burst_(burst) {}

  /// Records one logical request entering the retry layer.
  void on_request() noexcept { ++requests_; }

  /// Tries to admit one retry; false means the budget is exhausted and the
  /// current result must stand.
  [[nodiscard]] bool try_acquire() noexcept {
    const double allowed =
        ratio_ * static_cast<double>(requests_) + static_cast<double>(burst_);
    if (static_cast<double>(retries_ + 1) > allowed) {
      ++denied_;
      return false;
    }
    ++retries_;
    return true;
  }

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t denied() const noexcept { return denied_; }

 private:
  double ratio_;
  std::uint32_t burst_;
  std::uint64_t requests_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t denied_ = 0;
};

/// A service mesh dataplane + its control-plane footprint.
class MeshDataplane {
 public:
  virtual ~MeshDataplane() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Sends one request from `opts.client` to `opts.dst_service`; `done`
  /// fires when the response arrives back at the client.
  virtual void send_request(const RequestOptions& opts,
                            RequestCallback done) = 0;

  /// The event loop this dataplane schedules on (used by the retry layer
  /// for per-try timeouts and backoff waits).
  [[nodiscard]] virtual sim::EventLoop& event_loop() noexcept = 0;

  /// Sends one request with client-side retries/timeouts layered on top of
  /// send_request(). Retryable failures (502/503/504 per `policy`) are
  /// retried up to policy.max_attempts with capped exponential backoff;
  /// attempts that exceed policy.per_try_timeout are abandoned and counted
  /// as 504. When `budget` is non-null, each retry must be admitted by it.
  /// The final RequestResult carries the total attempt count, and — when
  /// tracing — a merged Trace whose spans still tile [send, done]: spans of
  /// completed attempts verbatim, plus kRetry spans covering abandoned
  /// attempts and backoff waits.
  void send_request_with_retries(const RequestOptions& opts,
                                 const RetryPolicy& policy, sim::Rng& rng,
                                 RequestCallback done,
                                 RetryBudget* budget = nullptr);

  /// Proxies that must be configured when a routing policy changes.
  [[nodiscard]] virtual std::vector<k8s::ConfigTarget>
  routing_update_targets() const = 0;

  /// Hook run against one proxy engine when its config epoch lands.
  using EngineApply = std::function<void(proxy::ProxyEngine&)>;

  /// Routing-update targets paired with delivery-time apply thunks for
  /// k8s::ConfigPropagation::push_epoch — each target's thunk runs
  /// `apply` over the engines that target configures, bumping their
  /// fastpath versions only when that proxy's epoch actually lands.
  /// Targets with no L7 engine (ztunnels, proxyless DNS entries) carry a
  /// null apply. The base implementation wraps routing_update_targets()
  /// with null applies; engine-backed planes override it.
  [[nodiscard]] virtual std::vector<k8s::EpochTarget> config_epoch_targets(
      const EngineApply& apply) const;

  /// Proxies that must be configured when `new_pods` are created
  /// (before the pods are reachable).
  [[nodiscard]] virtual std::vector<k8s::ConfigTarget> pod_create_targets(
      const std::vector<k8s::Pod*>& new_pods) const = 0;

  /// Mesh CPU burned inside the user cluster (core-seconds since start).
  [[nodiscard]] virtual double user_cpu_core_seconds() const = 0;
  /// Mesh CPU including any cloud-side components.
  [[nodiscard]] virtual double total_cpu_core_seconds() const = 0;

  /// Number of proxy instances the control plane manages.
  [[nodiscard]] virtual std::size_t proxy_count() const = 0;

  /// Arms the resilience filter chain (DESIGN.md §13). Stages run inside
  /// send_request_with_retries in fixed order — rate limit -> breaker ->
  /// retry — and outlier ejections are applied to this plane's LB sets
  /// through apply_endpoint_health(). Idempotent per call (replaces any
  /// previous chain).
  void enable_resilience(const proxy::ResilienceConfig& config);
  [[nodiscard]] proxy::ResilienceChain* resilience() noexcept {
    return resilience_.get();
  }

 protected:
  /// Flips one endpoint's health in every LB set this plane keeps for
  /// `service` (outlier ejection / readmission). Engine-based planes
  /// route this to UpstreamCluster::set_endpoint_health so the config
  /// version bump invalidates flow fastpath caches.
  virtual void apply_endpoint_health(net::ServiceId service,
                                     std::uint64_t endpoint_key, bool healthy);
  /// Endpoint-count denominator for the max_ejection_percent bound. Every
  /// plane answers from the shared k8s service object, so the bound is
  /// identical across planes.
  [[nodiscard]] virtual std::size_t service_endpoint_total(
      net::ServiceId service) const;

  std::unique_ptr<proxy::ResilienceChain> resilience_;
};

/// Serialized size of one service's routes + endpoints ("per-service
/// config"), and of the union over all services ("full config" — what
/// Istio pushes to every sidecar).
[[nodiscard]] std::size_t service_config_bytes(const k8s::Service& service);
[[nodiscard]] std::size_t full_config_bytes(const k8s::Cluster& cluster);

/// Default cluster name for a service's endpoint pool.
[[nodiscard]] std::string service_cluster_name(net::ServiceId id);

/// Appends the cluster name for `id` to `out` without allocating beyond
/// `out`'s own growth — the hot-path variant of service_cluster_name()
/// (service IDs carry the tenant in their high bits, so the name outgrows
/// the small-string buffer and a fresh std::string per request would hit
/// the heap every time).
void append_service_cluster_name(std::string& out, net::ServiceId id);

/// Installs the default route table ("/" prefix -> service cluster) and
/// endpoint pool for `service` into `engine`.
void install_service_config(proxy::ProxyEngine& engine,
                            const k8s::Service& service);

/// Installs configuration for every service of the cluster (full config).
void install_full_config(proxy::ProxyEngine& engine,
                         const k8s::Cluster& cluster);

/// Refreshes the endpoint pool of `service` in `engine` (pods added or
/// removed).
void refresh_endpoints(proxy::ProxyEngine& engine, const k8s::Service& service);

/// Virtual IP for a service (used as connection destination address).
[[nodiscard]] net::Ipv4Addr service_vip(net::ServiceId id);

/// Direct pod-to-pod dataplane: the "No service mesh" baseline of Fig 10.
class NoMesh final : public MeshDataplane {
 public:
  NoMesh(sim::EventLoop& loop, k8s::Cluster& cluster, NetworkProfile net = {},
         std::uint64_t seed = 0x6e6f2d6d657368ULL)
      : loop_(loop), cluster_(cluster), net_(net), rng_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "no-mesh";
  }
  void send_request(const RequestOptions& opts, RequestCallback done) override;
  [[nodiscard]] sim::EventLoop& event_loop() noexcept override {
    return loop_;
  }
  [[nodiscard]] std::vector<k8s::ConfigTarget> routing_update_targets()
      const override {
    return {};
  }
  [[nodiscard]] std::vector<k8s::ConfigTarget> pod_create_targets(
      const std::vector<k8s::Pod*>&) const override {
    return {};
  }
  [[nodiscard]] double user_cpu_core_seconds() const override { return 0.0; }
  [[nodiscard]] double total_cpu_core_seconds() const override { return 0.0; }
  [[nodiscard]] std::size_t proxy_count() const override { return 0; }

 protected:
  /// NoMesh has no proxy LB sets; ejection maintains a client-side
  /// excluded-pod set filtered out of ready_endpoints() in send_request.
  void apply_endpoint_health(net::ServiceId service,
                             std::uint64_t endpoint_key,
                             bool healthy) override;
  [[nodiscard]] std::size_t service_endpoint_total(
      net::ServiceId service) const override;

 private:
  sim::EventLoop& loop_;
  k8s::Cluster& cluster_;
  NetworkProfile net_;
  sim::Rng rng_;  ///< loss decisions under an armed fault plan
  std::size_t rr_ = 0;
  std::unordered_set<std::uint64_t> ejected_;  ///< outlier-ejected pod keys
};

/// Builds the HTTP request described by `opts`.
[[nodiscard]] http::Request build_request(const RequestOptions& opts);

/// Builds the request into `req`, reusing its buffers (string capacity,
/// header entries) — the zero-allocation path for pooled request state.
/// Stale headers from a previous use are dropped; the result is
/// byte-identical to build_request() on a fresh object.
void build_request_into(const RequestOptions& opts, http::Request& req);

}  // namespace canal::mesh
