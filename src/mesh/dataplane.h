// Common mesh-dataplane interface shared by the NoMesh/Istio/Ambient
// baselines and the Canal architecture (src/canal).
//
// Each architecture composes the same proxy engine (src/proxy) into a
// different topology; this interface lets the benchmark harness drive any
// of them identically (Figs 10/11/13/14/15).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "k8s/cluster.h"
#include "k8s/controller.h"
#include "net/flow.h"
#include "net/ids.h"
#include "proxy/engine.h"
#include "sim/time.h"
#include "telemetry/trace.h"

namespace canal::mesh {

/// Latency profile of the underlying network fabric.
struct NetworkProfile {
  sim::Duration intra_node = sim::microseconds(20);
  sim::Duration intra_az = sim::microseconds(100);
  sim::Duration cross_az = sim::microseconds(500);

  /// One-way transit between two nodes.
  [[nodiscard]] sim::Duration hop(const k8s::Node& a, const k8s::Node& b) const {
    if (&a == &b) return intra_node;
    return a.az() == b.az() ? intra_az : cross_az;
  }
};

struct RequestOptions {
  k8s::Pod* client = nullptr;
  net::ServiceId dst_service{};
  std::string path = "/";
  http::Method method = http::Method::kGet;
  std::vector<std::pair<std::string, std::string>> headers;
  std::uint32_t request_bytes = 256;
  /// New connection => handshake costs on every mTLS hop.
  bool new_connection = true;
  /// Tear down connection state after the response.
  bool close_after = true;
  /// Collect a per-hop Trace for this request (opt-in: the hot path stays
  /// allocation-free when false). The trace arrives on RequestResult.
  bool trace = false;
};

struct RequestResult {
  int status = 0;
  sim::Duration latency = 0;
  net::PodId served_by{};
  /// Populated iff RequestOptions.trace was set: ordered spans whose
  /// durations tile [send, done] — they sum exactly to `latency`.
  std::shared_ptr<telemetry::Trace> trace;
  [[nodiscard]] bool ok() const noexcept {
    return status >= 200 && status < 400;
  }
};

using RequestCallback = std::function<void(RequestResult)>;

/// A service mesh dataplane + its control-plane footprint.
class MeshDataplane {
 public:
  virtual ~MeshDataplane() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Sends one request from `opts.client` to `opts.dst_service`; `done`
  /// fires when the response arrives back at the client.
  virtual void send_request(const RequestOptions& opts,
                            RequestCallback done) = 0;

  /// Proxies that must be configured when a routing policy changes.
  [[nodiscard]] virtual std::vector<k8s::ConfigTarget>
  routing_update_targets() const = 0;

  /// Proxies that must be configured when `new_pods` are created
  /// (before the pods are reachable).
  [[nodiscard]] virtual std::vector<k8s::ConfigTarget> pod_create_targets(
      const std::vector<k8s::Pod*>& new_pods) const = 0;

  /// Mesh CPU burned inside the user cluster (core-seconds since start).
  [[nodiscard]] virtual double user_cpu_core_seconds() const = 0;
  /// Mesh CPU including any cloud-side components.
  [[nodiscard]] virtual double total_cpu_core_seconds() const = 0;

  /// Number of proxy instances the control plane manages.
  [[nodiscard]] virtual std::size_t proxy_count() const = 0;
};

/// Serialized size of one service's routes + endpoints ("per-service
/// config"), and of the union over all services ("full config" — what
/// Istio pushes to every sidecar).
[[nodiscard]] std::size_t service_config_bytes(const k8s::Service& service);
[[nodiscard]] std::size_t full_config_bytes(const k8s::Cluster& cluster);

/// Default cluster name for a service's endpoint pool.
[[nodiscard]] std::string service_cluster_name(net::ServiceId id);

/// Installs the default route table ("/" prefix -> service cluster) and
/// endpoint pool for `service` into `engine`.
void install_service_config(proxy::ProxyEngine& engine,
                            const k8s::Service& service);

/// Installs configuration for every service of the cluster (full config).
void install_full_config(proxy::ProxyEngine& engine,
                         const k8s::Cluster& cluster);

/// Refreshes the endpoint pool of `service` in `engine` (pods added or
/// removed).
void refresh_endpoints(proxy::ProxyEngine& engine, const k8s::Service& service);

/// Virtual IP for a service (used as connection destination address).
[[nodiscard]] net::Ipv4Addr service_vip(net::ServiceId id);

/// Direct pod-to-pod dataplane: the "No service mesh" baseline of Fig 10.
class NoMesh final : public MeshDataplane {
 public:
  NoMesh(sim::EventLoop& loop, k8s::Cluster& cluster, NetworkProfile net = {})
      : loop_(loop), cluster_(cluster), net_(net) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "no-mesh";
  }
  void send_request(const RequestOptions& opts, RequestCallback done) override;
  [[nodiscard]] std::vector<k8s::ConfigTarget> routing_update_targets()
      const override {
    return {};
  }
  [[nodiscard]] std::vector<k8s::ConfigTarget> pod_create_targets(
      const std::vector<k8s::Pod*>&) const override {
    return {};
  }
  [[nodiscard]] double user_cpu_core_seconds() const override { return 0.0; }
  [[nodiscard]] double total_cpu_core_seconds() const override { return 0.0; }
  [[nodiscard]] std::size_t proxy_count() const override { return 0; }

 private:
  sim::EventLoop& loop_;
  k8s::Cluster& cluster_;
  NetworkProfile net_;
  std::size_t rr_ = 0;
};

/// Builds the HTTP request described by `opts`.
[[nodiscard]] http::Request build_request(const RequestOptions& opts);

}  // namespace canal::mesh
