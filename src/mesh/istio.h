// Istio-style per-pod sidecar mesh (the paper's primary baseline, §2.1).
//
// Every pod carries a full-featured L7 sidecar. Traffic is redirected into
// the sidecar with iptables on both ends, so each request crosses two L7
// proxies. Sidecars draw CPU from a per-node pool (modeling pod-resource
// consumption on the node), and the control plane must push the *full*
// configuration set to *every* sidecar on any change — the O(N^2)
// southbound blowup of §2.1.
#pragma once

#include <memory>

#include "crypto/accelerator.h"
#include "mesh/dataplane.h"
#include "sim/flat_map.h"
#include "sim/rng.h"

namespace canal::mesh {

class IstioMesh final : public MeshDataplane {
 public:
  struct Config {
    /// CPU pool per node shared by that node's sidecars.
    std::size_t sidecar_cores_per_node = 4;
    /// Sidecar processing cost profile (Envoy-like, iptables redirected).
    proxy::ProxyCostModel costs = default_sidecar_costs();
    NetworkProfile network;
    bool mtls = true;

    [[nodiscard]] static proxy::ProxyCostModel default_sidecar_costs();
  };

  IstioMesh(sim::EventLoop& loop, k8s::Cluster& cluster, Config config,
            sim::Rng rng);
  ~IstioMesh() override;

  /// Creates sidecars for all current pods and installs full config.
  void install();

  /// Injects a sidecar for a newly created pod.
  void add_sidecar(k8s::Pod& pod);

  /// Re-installs endpoint/route config into every sidecar (what a config
  /// push achieves once delivered).
  void reinstall_all();

  [[nodiscard]] std::string_view name() const noexcept override {
    return "istio";
  }
  void send_request(const RequestOptions& opts, RequestCallback done) override;
  [[nodiscard]] sim::EventLoop& event_loop() noexcept override {
    return loop_;
  }
  [[nodiscard]] std::vector<k8s::ConfigTarget> routing_update_targets()
      const override;
  [[nodiscard]] std::vector<k8s::EpochTarget> config_epoch_targets(
      const EngineApply& apply) const override;
  [[nodiscard]] std::vector<k8s::ConfigTarget> pod_create_targets(
      const std::vector<k8s::Pod*>& new_pods) const override;
  [[nodiscard]] double user_cpu_core_seconds() const override;
  [[nodiscard]] double total_cpu_core_seconds() const override {
    return user_cpu_core_seconds();
  }
  [[nodiscard]] std::size_t proxy_count() const override {
    return sidecars_.size();
  }

  [[nodiscard]] proxy::ProxyEngine* sidecar_engine(net::PodId pod);
  /// Mean utilization of all sidecar CPU pools over the window.
  [[nodiscard]] double sidecar_utilization(sim::Duration window) const;

 protected:
  /// Outlier ejection reaches every sidecar's endpoint pool (each sidecar
  /// holds the full config, so each has its own copy of the cluster).
  void apply_endpoint_health(net::ServiceId service,
                             std::uint64_t endpoint_key,
                             bool healthy) override;
  [[nodiscard]] std::size_t service_endpoint_total(
      net::ServiceId service) const override;

 private:
  struct NodePool {
    explicit NodePool(sim::EventLoop& loop, std::size_t cores)
        : cpu(loop, cores) {}
    sim::CpuSet cpu;
    std::unique_ptr<crypto::AsymmetricAccelerator> accel;
  };
  struct Sidecar {
    std::unique_ptr<proxy::ProxyEngine> engine;
    k8s::Pod* pod = nullptr;
  };

  NodePool& pool_for(const k8s::Node& node);

  sim::EventLoop& loop_;
  k8s::Cluster& cluster_;
  Config config_;
  sim::Rng rng_;
  // Flat tables (DESIGN.md §14): sidecar lookup is per-request. Ordered so
  // config-push target lists and CPU sums iterate in a fixed key order.
  sim::FlatOrderedMap<const k8s::Node*, std::unique_ptr<NodePool>> pools_;
  sim::FlatOrderedMap<net::PodId, Sidecar> sidecars_;
  std::uint16_t next_port_ = 10000;
};

}  // namespace canal::mesh
