// Parallel shard execution: binds sim::ShardedSim's round barrier to the
// experiment runner's WorkStealingPool.
//
// sim/ cannot depend on runner/ (the simulator is the bottom of the
// layering), so ShardedSim only knows the abstract ShardRunner interface;
// this adapter lives one layer up and supplies the threaded implementation.
// submit() + wait_idle() give the exact semantics ShardRunner demands: the
// wait IS the barrier, and the pool's mutex hand-off publishes every
// shard's state to whichever worker picks it up next round (the
// happens-before edge the interface contract requires).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runner/thread_pool.h"
#include "sim/shard.h"

namespace canal::runner {

/// Runs each round's shard tasks on a private WorkStealingPool. A pool per
/// ShardedSim run (not a shared one) keeps wait_idle() correct: nothing
/// else may enqueue between submit and the barrier.
class PoolShardRunner final : public sim::ShardRunner {
 public:
  /// `threads` is clamped to >= 1 by the pool; sizing it at min(shards,
  /// hardware threads) is the caller's job (see bench/region.h).
  explicit PoolShardRunner(std::size_t threads) : pool_(threads) {}

  void run_round(std::vector<std::function<void()>>& tasks) override {
    // Reference-capture is safe: wait_idle() below outlives every task,
    // and ShardedSim keeps `tasks` alive across the whole run.
    for (auto& task : tasks) pool_.submit([&task] { task(); });
    pool_.wait_idle();
  }

  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_.threads();
  }

 private:
  WorkStealingPool pool_;
};

}  // namespace canal::runner
