// The unit of work the experiment runner fans out: a self-contained
// (scenario, variant, seed, overrides) tuple, and the structured record a
// scenario function returns for it.
//
// Concurrency contract: a RunSpec carries *values only* — no pointers into
// shared simulation state — so a scenario function can execute it on any
// thread by building its own sim::EventLoop + testbed from scratch. The
// reducer orders results by RunSpec::key(), never by completion order, so
// merged output is byte-identical at any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace canal::telemetry {
class MetricsRegistry;
class TraceExport;
}  // namespace canal::telemetry

namespace canal::runner {

struct RunSpec {
  /// Registered scenario family, e.g. "throughput_knee".
  std::string scenario;
  /// Row within the family, e.g. the dataplane ("canal") or a mode
  /// ("monitor-on-retry"). (scenario, variant, overrides, seed) is unique.
  std::string variant;
  /// Seed for every RNG the run derives; seed sweeps enumerate 1..K.
  std::uint64_t seed = 1;
  /// Named knobs the scenario reads (e.g. {"retries", 1}). Insertion order
  /// is part of the spec identity, so keep it fixed across seeds.
  std::vector<std::pair<std::string, double>> overrides;

  /// Override value, or `fallback` if the knob is absent.
  [[nodiscard]] double override_or(std::string_view name,
                                   double fallback) const;

  /// Canonical identity used for deterministic reduction ordering.
  [[nodiscard]] std::string key() const;

  /// key() minus the seed: runs sharing a group_key form one seed sweep.
  [[nodiscard]] std::string group_key() const;
};

struct RunResult {
  bool ok = true;
  /// Failure description when !ok (scenario threw, or was unknown).
  std::string error;
  /// Numeric metrics in insertion order; this order is what the reducer
  /// emits, so it must not depend on the executing thread or timing.
  std::vector<std::pair<std::string, double>> metrics;
  /// Free-form strings for table output (never merged into JSON goldens;
  /// wall-clock readings and sweep traces belong here).
  std::vector<std::pair<std::string, std::string>> notes;
  /// Optional per-run metrics registry the scenario populated. Left null
  /// by scenarios that only report scalar metrics. Shared_ptr (not a
  /// value) so RunResult stays copyable without forcing every scenario to
  /// pay for registry storage; sweep.h's merge_group_registries folds
  /// these across a seed group with telemetry::MetricsRegistry::merge.
  std::shared_ptr<telemetry::MetricsRegistry> registry;
  /// Optional sampled traces from the run (telemetry::TraceExport).
  std::shared_ptr<telemetry::TraceExport> traces;

  void set(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void note(std::string name, std::string value) {
    notes.emplace_back(std::move(name), std::move(value));
  }
  /// First metric with this name, or nullptr.
  [[nodiscard]] const double* find(std::string_view name) const;
};

/// A completed (or failed) spec with its result, as handed to the reducer.
struct Outcome {
  RunSpec spec;
  RunResult result;
  /// Host wall-clock the run took. Diagnostic only — varies with machine
  /// load and worker contention, so it must never feed merged goldens.
  double wall_ms = 0.0;
};

}  // namespace canal::runner
