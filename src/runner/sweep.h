// Seed-sweep reduction: groups outcomes that differ only in seed and
// summarizes each metric as mean / p50 / p95 with min / max whiskers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/run.h"
#include "telemetry/registry.h"

namespace canal::runner {

/// Summary statistics over one metric's per-seed values. Percentiles are
/// nearest-rank (rank = ceil(p/100 * n)), matching sim::Histogram.
struct SeedStats {
  std::size_t n = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double min = 0;
  double max = 0;
};

/// Computes SeedStats over `values` (empty input yields all zeros).
[[nodiscard]] SeedStats seed_stats(std::vector<double> values);

/// Outcomes sharing a RunSpec::group_key(), in ascending-seed order, with
/// per-metric stats across the group's successful runs.
struct SweepGroup {
  std::string group_key;
  /// Pointers into the reduced outcome vector (ascending seed).
  std::vector<const Outcome*> runs;
  /// (metric name, stats) in the first successful run's metric order;
  /// metrics missing from some seeds are summarized over the seeds that
  /// report them.
  std::vector<std::pair<std::string, SeedStats>> metrics;

  /// The lowest-seed successful run (the "base" values a seeds=1 invocation
  /// would report), or nullptr if every seed failed.
  [[nodiscard]] const Outcome* base() const;
};

/// Groups key-sorted outcomes (as returned by Runner::run) into sweeps.
/// Group order follows the outcomes' order, so it is deterministic.
[[nodiscard]] std::vector<SweepGroup> group_sweeps(
    const std::vector<Outcome>& outcomes);

/// Folds the per-seed metric registries of one sweep group into a single
/// registry: counters add, histograms merge exactly (bucket-wise), gauges
/// keep the last-merged value. Runs are folded in ascending-seed order
/// (the group's `runs` order), so the result is byte-identical at any
/// worker count. Runs without a registry (result.registry == nullptr) are
/// skipped; an all-null group yields an empty registry.
[[nodiscard]] telemetry::MetricsRegistry merge_group_registries(
    const SweepGroup& group);

}  // namespace canal::runner
