// The experiment runner: a scenario registry plus a deterministic
// fan-out/reduce harness over WorkStealingPool.
//
// Determinism contract (see DESIGN.md §10): every scenario function builds
// its *own* sim::EventLoop and testbed from the RunSpec and touches no
// mutable state shared with sibling runs; the reducer orders outcomes by
// RunSpec::key(), never by completion order. Under that contract the merged
// result vector — and any report rendered from it in order — is
// byte-identical for every `jobs` value.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runner/run.h"

namespace canal::runner {

/// A scenario executes one spec to completion and returns its metrics.
/// It may throw; the runner converts the exception into a failed Outcome
/// without disturbing sibling runs.
using ScenarioFn = std::function<RunResult(const RunSpec&)>;

class Runner {
 public:
  /// Registers (or replaces) the function behind `spec.scenario == name`.
  void register_scenario(std::string name, ScenarioFn fn) {
    scenarios_[std::move(name)] = std::move(fn);
  }

  [[nodiscard]] std::vector<std::string> scenario_names() const;

  /// Executes every spec on up to `jobs` worker threads and returns one
  /// Outcome per spec, sorted by RunSpec::key(). A spec whose scenario
  /// throws (or is unregistered) yields {ok = false, error = ...}.
  [[nodiscard]] std::vector<Outcome> run(std::vector<RunSpec> specs,
                                         std::size_t jobs) const;

 private:
  std::map<std::string, ScenarioFn> scenarios_;
};

}  // namespace canal::runner
