#include "runner/run.h"

#include <cstdio>

namespace canal::runner {

double RunSpec::override_or(std::string_view name, double fallback) const {
  for (const auto& [key, value] : overrides) {
    if (key == name) return value;
  }
  return fallback;
}

std::string RunSpec::group_key() const {
  std::string out = scenario;
  out += '/';
  out += variant;
  for (const auto& [name, value] : overrides) {
    out += '/';
    out += name;
    out += '=';
    // Overrides are spec identity, not measurements: format compactly but
    // exactly enough that distinct knob settings never collide.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
  }
  return out;
}

std::string RunSpec::key() const {
  std::string out = group_key();
  out += "/seed=";
  // Fixed-width so lexicographic order == numeric seed order.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(seed));
  out += buf;
  return out;
}

const double* RunResult::find(std::string_view name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

}  // namespace canal::runner
