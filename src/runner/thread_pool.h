// Work-stealing thread pool for coarse-grained experiment runs.
//
// Each worker owns a deque: it drains its own queue front-to-back (FIFO, so
// expensive specs submitted first start first) and, when empty, steals from
// the back of the most loaded sibling. Tasks here are whole simulations —
// milliseconds to seconds each — so the deques are guarded by one mutex
// rather than lock-free Chase–Lev structures: scheduling cost is noise
// against task cost, and the simple locking is trivially TSan-clean.
//
// The pool makes no ordering promises; callers needing deterministic output
// must order by task identity after wait_idle() (see runner::Runner).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace canal::runner {

class WorkStealingPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit WorkStealingPool(std::size_t threads);
  /// Waits for queued work to finish, then joins the workers.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues a task (round-robin across worker deques). Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  [[nodiscard]] std::size_t threads() const noexcept { return queues_.size(); }

 private:
  void worker_loop(std::size_t self);
  /// Pops the next task for worker `self` (own queue first, then the
  /// longest sibling queue). Returns false if none available.
  bool take_task(std::size_t self, std::function<void()>& out);

  std::mutex mu_;
  std::condition_variable work_cv_;   // queued work available / shutdown
  std::condition_variable idle_cv_;   // all tasks finished
  std::vector<std::deque<std::function<void()>>> queues_;
  std::size_t queued_ = 0;      // tasks sitting in deques
  std::size_t unfinished_ = 0;  // queued + currently executing
  std::size_t next_queue_ = 0;  // round-robin submission cursor
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace canal::runner
