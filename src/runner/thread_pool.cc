#include "runner/thread_pool.h"

namespace canal::runner {

WorkStealingPool::WorkStealingPool(std::size_t threads)
    : queues_(threads == 0 ? 1 : threads) {
  workers_.reserve(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    ++unfinished_;
  }
  work_cv_.notify_one();
}

void WorkStealingPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

bool WorkStealingPool::take_task(std::size_t self,
                                 std::function<void()>& out) {
  // Own queue first, oldest task first.
  if (!queues_[self].empty()) {
    out = std::move(queues_[self].front());
    queues_[self].pop_front();
    return true;
  }
  // Steal from the back of the most loaded sibling.
  std::size_t victim = queues_.size();
  std::size_t best = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i != self && queues_[i].size() > best) {
      best = queues_[i].size();
      victim = i;
    }
  }
  if (victim == queues_.size()) return false;
  out = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  return true;
}

void WorkStealingPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (take_task(self, task)) {
      --queued_;
      lock.unlock();
      task();
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      if (--unfinished_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock, [this, self] {
      if (stop_) return true;
      if (!queues_[self].empty()) return true;
      for (std::size_t i = 0; i < queues_.size(); ++i) {
        if (!queues_[i].empty()) return true;
      }
      return false;
    });
  }
}

}  // namespace canal::runner
