#include "runner/sweep.h"

#include <algorithm>
#include <cmath>

namespace canal::runner {
namespace {

double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

SeedStats seed_stats(std::vector<double> values) {
  SeedStats stats;
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end());
  stats.n = values.size();
  double sum = 0;
  for (const double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  stats.p50 = nearest_rank(values, 50);
  stats.p95 = nearest_rank(values, 95);
  stats.min = values.front();
  stats.max = values.back();
  return stats;
}

const Outcome* SweepGroup::base() const {
  for (const Outcome* run : runs) {
    if (run->result.ok) return run;
  }
  return nullptr;
}

std::vector<SweepGroup> group_sweeps(const std::vector<Outcome>& outcomes) {
  std::vector<SweepGroup> groups;
  for (const Outcome& outcome : outcomes) {
    const std::string key = outcome.spec.group_key();
    if (groups.empty() || groups.back().group_key != key) {
      groups.push_back(SweepGroup{key, {}, {}});
    }
    groups.back().runs.push_back(&outcome);
  }
  for (SweepGroup& group : groups) {
    std::sort(group.runs.begin(), group.runs.end(),
              [](const Outcome* a, const Outcome* b) {
                return a->spec.seed < b->spec.seed;
              });
    const Outcome* base = group.base();
    if (base == nullptr) continue;
    for (const auto& [name, unused] : base->result.metrics) {
      (void)unused;
      std::vector<double> values;
      values.reserve(group.runs.size());
      for (const Outcome* run : group.runs) {
        if (!run->result.ok) continue;
        if (const double* v = run->result.find(name)) values.push_back(*v);
      }
      group.metrics.emplace_back(name, seed_stats(std::move(values)));
    }
  }
  return groups;
}

telemetry::MetricsRegistry merge_group_registries(const SweepGroup& group) {
  telemetry::MetricsRegistry merged;
  for (const Outcome* run : group.runs) {  // ascending seed
    if (run->result.registry) merged.merge(*run->result.registry);
  }
  return merged;
}

}  // namespace canal::runner
