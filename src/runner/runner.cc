#include "runner/runner.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "runner/thread_pool.h"

namespace canal::runner {

std::vector<std::string> Runner::scenario_names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, fn] : scenarios_) names.push_back(name);
  return names;
}

std::vector<Outcome> Runner::run(std::vector<RunSpec> specs,
                                 std::size_t jobs) const {
  std::vector<Outcome> outcomes(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    outcomes[i].spec = std::move(specs[i]);
  }
  {
    // Each task writes only its own pre-sized slot, so the workers share
    // nothing; the pool's wait_idle() in the destructor is the barrier
    // that publishes every slot to this thread.
    WorkStealingPool pool(jobs);
    for (auto& outcome : outcomes) {
      pool.submit([this, &outcome] {
        const auto start = std::chrono::steady_clock::now();
        const auto it = scenarios_.find(outcome.spec.scenario);
        if (it == scenarios_.end()) {
          outcome.result.ok = false;
          outcome.result.error =
              "unknown scenario: " + outcome.spec.scenario;
          return;
        }
        try {
          outcome.result = it->second(outcome.spec);
        } catch (const std::exception& e) {
          outcome.result = RunResult{};
          outcome.result.ok = false;
          outcome.result.error = e.what();
        } catch (...) {
          outcome.result = RunResult{};
          outcome.result.ok = false;
          outcome.result.error = "unknown exception";
        }
        outcome.wall_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      });
    }
    pool.wait_idle();
  }
  // Deterministic reduction order: spec identity, never completion order.
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) {
              return a.spec.key() < b.spec.key();
            });
  return outcomes;
}

}  // namespace canal::runner
