// The proxy engine: the L4/L7 packet-processing core shared by every
// dataplane in this repository.
//
// Istio sidecars, Ambient ztunnels and waypoints, and Canal gateway
// replicas are all instances of this engine with different configurations
// (L4-only vs L7, redirection mode, mTLS termination, session capacity,
// core counts). Processing is charged to simulated cores; route resolution
// runs the real RouteTable matcher over the real HTTP request.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "http/route.h"
#include "net/flow.h"
#include "net/ids.h"
#include "proxy/cost_model.h"
#include "proxy/session_table.h"
#include "proxy/upstream.h"
#include "sim/arena.h"
#include "sim/cpu.h"
#include "sim/event_loop.h"
#include "sim/flat_map.h"
#include "sim/rng.h"
#include "telemetry/trace.h"

namespace canal::proxy {

class ProxyEngine {
 public:
  struct Config {
    std::string name;
    /// L7 (HTTP routing) vs pure L4 forwarding.
    bool l7 = true;
    /// How app traffic reaches this proxy when co-located with the app.
    RedirectMode redirect = RedirectMode::kNone;
    /// Terminate/originate mesh mTLS on this hop.
    bool mtls = false;
    ProxyCostModel costs;
    std::size_t session_capacity = 1'000'000;
    /// Fraction of per-request CPU that runs OFF the serialized request
    /// path (access logging, stats flushing, telemetry export). It still
    /// occupies the core — delaying subsequent requests and counting
    /// toward CPU usage — but does not gate this request's completion.
    /// Heavyweight Envoy-style chains have a large off-path share.
    double off_path_fraction = 0.0;
  };

  /// Pluggable executor for the asymmetric part of a TLS handshake —
  /// local software, a batched accelerator, or a remote key-server client.
  using HandshakeExecutor = std::function<void(std::function<void()> done)>;

  /// Observation hook fired for every accepted request (service telemetry).
  using RequestObserver = std::function<void(
      net::ServiceId service, const net::FiveTuple& tuple, std::uint64_t bytes,
      bool new_connection)>;

  ProxyEngine(sim::EventLoop& loop, sim::CpuSet& cpu, Config config,
              sim::Rng rng);

  ProxyEngine(const ProxyEngine&) = delete;
  ProxyEngine& operator=(const ProxyEngine&) = delete;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] ClusterManager& clusters() noexcept { return clusters_; }
  [[nodiscard]] SessionTable& sessions() noexcept { return sessions_; }
  [[nodiscard]] sim::CpuSet& cpu() noexcept { return cpu_; }

  /// Installs the per-service virtual-host route table.
  void set_route_table(net::ServiceId service, http::RouteTable table);
  [[nodiscard]] const http::RouteTable* route_table(
      net::ServiceId service) const;
  /// Total installed configuration footprint (bytes) — what the controller
  /// must push to this proxy.
  [[nodiscard]] std::size_t config_bytes() const;

  void set_handshake_executor(HandshakeExecutor executor) {
    handshake_executor_ = std::move(executor);
  }
  void set_request_observer(RequestObserver observer) {
    observer_ = std::move(observer);
  }

  struct RequestOutcome {
    bool ok = false;
    int status = 0;              ///< Error/direct-response status when !ok
    /// Chosen upstream cluster when ok. A view into the UpstreamCluster's
    /// own name — stable for the cluster's lifetime, so valid for the
    /// duration of the `done` callback; copy it to retain it longer. (A
    /// std::string here heap-allocated per request: generated
    /// "service-<id>" names outgrow the small-string buffer.)
    std::string_view cluster;
    UpstreamEndpoint* endpoint = nullptr;
  };
  using RequestCallback = std::function<void(RequestOutcome)>;

  /// Processes one request arriving on connection `tuple` for
  /// `dst_service`. Charges redirection/session/TLS/L4/L7 costs on a core
  /// pinned by flow hash, resolves the route table (L7) and picks an
  /// upstream endpoint. `req` may be mutated by route actions and is held
  /// by reference across the (asynchronous) CPU hops: it must stay alive
  /// and at a stable address until `done` fires. When `trace`
  /// is non-null, appends handshake and L4/L7 spans (with queue-wait vs
  /// service-time split) covering the whole time until `done` fires.
  void handle_request(const net::FiveTuple& tuple, net::ServiceId dst_service,
                      bool new_connection, http::Request& req,
                      RequestCallback done,
                      telemetry::Trace* trace = nullptr);

  /// Server-side inbound processing: same cost structure as
  /// handle_request (redirection, session, TLS termination, L4/L7) but no
  /// route resolution — the local workload is the destination. `done(ok,
  /// status)` reports session-capacity rejections.
  void handle_inbound(const net::FiveTuple& tuple, net::ServiceId dst_service,
                      bool new_connection, std::uint64_t bytes,
                      std::function<void(bool ok, int status)> done,
                      telemetry::Trace* trace = nullptr);

  /// Response-direction forwarding for `bytes` of payload.
  void handle_response(const net::FiveTuple& tuple, std::uint64_t bytes,
                       std::function<void()> done,
                       telemetry::Trace* trace = nullptr);

  /// Drops connection state (upstream endpoint bookkeeping is external).
  void close_connection(const net::FiveTuple& tuple);

  // --- statistics -----------------------------------------------------
  [[nodiscard]] std::uint64_t requests_total() const noexcept {
    return requests_total_;
  }
  [[nodiscard]] std::uint64_t requests_failed() const noexcept {
    return requests_failed_;
  }
  [[nodiscard]] std::uint64_t handshakes() const noexcept {
    return handshakes_;
  }
  [[nodiscard]] std::uint64_t bytes_proxied() const noexcept {
    return bytes_proxied_;
  }
  /// Requests whose route-match + upstream-selection was served from the
  /// per-flow fastpath cache (the paper's established-flow fast path).
  [[nodiscard]] std::uint64_t fastpath_hits() const noexcept {
    return fastpath_hits_;
  }
  [[nodiscard]] std::uint64_t fastpath_misses() const noexcept {
    return fastpath_misses_;
  }

 private:
  /// Per-flow memo of the routing decision: the matched first rule (L7)
  /// and the resolved upstream-cluster handles, validated against the
  /// combined route/endpoint/session epoch. Only the table's *first* rule
  /// is ever cached and its match is re-verified per request, so
  /// first-match-wins semantics (and the exact RNG draw sequence) are
  /// preserved — a hit changes wall-clock work only, never simulated
  /// behaviour. Entries live in a direct-mapped slot array: insertion is
  /// allocation-free and a colliding flow simply evicts (the evicted flow
  /// falls back to the slow path — a miss, never a behaviour change).
  struct FastpathEntry {
    net::FiveTuple tuple{};  ///< slot key; value-initialized = empty slot
    std::uint64_t epoch = 0;
    net::ServiceId service{};
    const http::RouteRule* rule = nullptr;  ///< null for L4 entries
    /// Aligned with rule->action.clusters (L7) or a single slot (L4).
    /// Slots may be null when the named cluster is not installed — a hit
    /// then fails with 502 exactly like the slow path. Rules with more
    /// weighted clusters than fit inline are simply not cached.
    static constexpr std::size_t kMaxClusters = 4;
    std::array<UpstreamCluster*, kMaxClusters> clusters{};
    std::uint8_t cluster_count = 0;
  };

  /// Direct-mapped slot count (power of two). The array is sized lazily on
  /// first insert so idle engines (e.g. aggregate-load replicas) pay
  /// nothing.
  static constexpr std::size_t kFastpathSlots = 1 << 12;

  /// Pooled per-call state (DESIGN.md §14): request/inbound continuations
  /// capture only the CallState pointer, so every std::function built on
  /// the hot path fits libstdc++'s 16-byte small-buffer optimisation and
  /// the steady-state path never boxes a closure on the heap. Slots come
  /// from a capacity-retaining Pool, so their std::function members reuse
  /// whatever storage earlier calls left behind.
  struct CallState {
    ProxyEngine* self = nullptr;
    net::FiveTuple tuple{};
    net::ServiceId dst_service{};
    http::Request* req = nullptr;
    std::uint64_t bytes = 0;
    std::uint64_t hash = 0;
    sim::Duration on_path = 0;
    sim::Duration off_path = 0;
    telemetry::Component component{};
    telemetry::Trace* trace = nullptr;
    sim::TimePoint cpu_start = 0;
    sim::TimePoint hs_start = 0;
    sim::Duration queue_wait = 0;
    RequestCallback done;                       ///< handle_request calls
    std::function<void(bool, int)> done_inbound;  ///< handle_inbound calls
  };

  /// CPU cost of the request path, excluding the asymmetric handshake.
  [[nodiscard]] sim::Duration request_cpu_cost(std::uint64_t bytes,
                                               bool new_connection) const;

  /// Post-handshake continuations of handle_request / handle_inbound.
  void continue_request(CallState* cs);
  void continue_inbound(CallState* cs);

  void finish_request(const net::FiveTuple& tuple, net::ServiceId dst_service,
                      http::Request& req, RequestCallback done,
                      telemetry::Trace* trace);

  /// Combined invalidation epoch: any route-table install, cluster or
  /// endpoint membership change, or actual session drop moves it forward.
  [[nodiscard]] std::uint64_t fastpath_epoch() const noexcept {
    return route_epoch_ + clusters_.version() + sessions_.drop_epoch();
  }

  sim::EventLoop& loop_;
  sim::CpuSet& cpu_;
  Config config_;
  sim::Rng rng_;
  ClusterManager clusters_;
  SessionTable sessions_;
  // Flat route-match table: the fastpath-miss lookup is a contiguous probe
  // run. RouteTable values move on rehash, but every cached RouteRule*
  // (fastpath entries) is guarded by route_epoch_, which set_route_table
  // bumps before inserting.
  sim::FlatHashMap<net::ServiceId, http::RouteTable, net::IdHash> routes_;
  HandshakeExecutor handshake_executor_;
  RequestObserver observer_;
  std::uint64_t requests_total_ = 0;
  std::uint64_t requests_failed_ = 0;
  std::uint64_t handshakes_ = 0;
  std::uint64_t bytes_proxied_ = 0;

  std::vector<FastpathEntry> fastpath_;
  sim::Pool<CallState> calls_;
  std::uint64_t route_epoch_ = 0;
  std::uint64_t fastpath_hits_ = 0;
  std::uint64_t fastpath_misses_ = 0;

  // Span names are fixed per engine; precomputing them keeps the traced
  // hot path free of per-request string concatenation.
  std::string span_main_;
  std::string span_resp_;
  std::string span_inbound_;
  std::string span_handshake_;
  std::string span_reject_;
  std::string span_inbound_reject_;
  std::string span_fastpath_;
};

}  // namespace canal::proxy
