// Upstream cluster management: endpoint pools and load-balancing policies.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/address.h"
#include "sim/flat_map.h"
#include "sim/rng.h"

namespace canal::proxy {

/// One backend endpoint of an upstream cluster. `key` is an opaque handle
/// the owner uses to map back to its own objects (e.g. a PodId).
struct UpstreamEndpoint {
  net::Endpoint address;
  std::uint64_t key = 0;
  std::uint32_t weight = 1;
  bool healthy = true;
  std::uint32_t active_requests = 0;
};

enum class LbPolicy : std::uint8_t { kRoundRobin, kRandom, kLeastRequest };

/// A named pool of endpoints with a pick policy.
class UpstreamCluster {
 public:
  UpstreamCluster(std::string name, LbPolicy policy)
      : name_(std::move(name)), policy_(policy) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] LbPolicy policy() const noexcept { return policy_; }

  UpstreamEndpoint& add_endpoint(net::Endpoint address, std::uint64_t key,
                                 std::uint32_t weight = 1);
  bool remove_endpoint(std::uint64_t key);
  [[nodiscard]] UpstreamEndpoint* find_endpoint(std::uint64_t key);

  /// Flips `key`'s health (outlier ejection / readmission). A real flip
  /// counts as a membership change — the version hook is bumped so flow
  /// fastpath caches keyed on the config version revalidate and cannot
  /// keep routing to an ejected endpoint. Returns false when `key` is
  /// unknown or already in the requested state (no version churn).
  bool set_endpoint_health(std::uint64_t key, bool healthy);

  /// Picks a healthy endpoint per policy; nullptr if none are healthy.
  [[nodiscard]] UpstreamEndpoint* pick(sim::Rng& rng);

  /// Endpoints are heap-allocated so UpstreamEndpoint* stays valid across
  /// add/remove — callers hold raw pointers over async request lifetimes.
  [[nodiscard]] const std::vector<std::unique_ptr<UpstreamEndpoint>>&
  endpoints() const {
    return endpoints_;
  }
  [[nodiscard]] std::size_t healthy_count() const;

  /// When set, endpoint membership changes increment the counter — the
  /// ClusterManager's config version, which fastpath caches key on.
  void set_version_hook(std::uint64_t* version) noexcept {
    version_hook_ = version;
  }

 private:
  std::string name_;
  LbPolicy policy_;
  std::vector<std::unique_ptr<UpstreamEndpoint>> endpoints_;
  std::size_t rr_cursor_ = 0;
  std::uint64_t* version_hook_ = nullptr;
};

/// All upstream clusters known to one proxy.
class ClusterManager {
 public:
  UpstreamCluster& add_cluster(const std::string& name,
                               LbPolicy policy = LbPolicy::kRoundRobin);
  /// Heterogeneous lookup: string_view keys avoid building a std::string
  /// on the per-request resolve path.
  [[nodiscard]] UpstreamCluster* find(std::string_view name);
  void remove_cluster(const std::string& name);
  [[nodiscard]] std::size_t size() const noexcept { return clusters_.size(); }

  /// Monotonic configuration version: bumped on cluster add/remove and on
  /// endpoint membership changes inside any managed cluster. Fastpath
  /// caches holding UpstreamCluster* validate against this, so an endpoint
  /// diff (refresh_endpoints) forces a cache miss.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  // Flat table with unique_ptr values: UpstreamCluster* handed to fastpath
  // caches must survive rehashes.
  sim::FlatHashMap<std::string, std::unique_ptr<UpstreamCluster>,
                   sim::StringHash>
      clusters_;
  std::uint64_t version_ = 0;
};

}  // namespace canal::proxy
