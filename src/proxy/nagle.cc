#include "proxy/nagle.h"

namespace canal::proxy {

void NagleBuffer::write(std::uint64_t bytes) {
  ++writes_accepted_;
  buffered_bytes_ += bytes;
  ++buffered_writes_;
  // Emit every full MSS immediately.
  while (buffered_bytes_ >= mss_) {
    const std::uint32_t writes = buffered_writes_;
    const std::uint64_t emit_bytes = mss_;
    buffered_bytes_ -= mss_;
    buffered_writes_ = buffered_bytes_ > 0 ? 1 : 0;
    emit(emit_bytes, writes);
  }
  if (buffered_bytes_ > 0 && !timer_.pending()) {
    timer_ = loop_.schedule(timeout_, [this] { flush(); });
  }
}

void NagleBuffer::flush() {
  timer_.cancel();
  if (buffered_bytes_ == 0) return;
  const std::uint64_t bytes = buffered_bytes_;
  const std::uint32_t writes = buffered_writes_;
  buffered_bytes_ = 0;
  buffered_writes_ = 0;
  emit(bytes, writes);
}

void NagleBuffer::emit(std::uint64_t bytes, std::uint32_t writes) {
  ++segments_emitted_;
  if (on_flush_) on_flush_(bytes, writes);
}

}  // namespace canal::proxy
