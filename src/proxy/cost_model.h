// Dataplane cost constants and traffic-redirection modes (DESIGN.md §4).
//
// Redirection cost structure follows Fig 21/22: iptables-based redirection
// adds two extra kernel stack passes and two context switches on each side
// of the proxy; eBPF sockmap redirection is a single socket-to-socket move
// that bypasses the kernel stack (but loses Nagle aggregation, which
// src/proxy/nagle.h restores).
#pragma once

#include <cstdint>

#include "crypto/cost_model.h"
#include "sim/time.h"

namespace canal::proxy {

enum class RedirectMode : std::uint8_t { kNone, kIptables, kEbpf };

struct ProxyCostModel {
  /// One traversal of the kernel protocol stack.
  sim::Duration kernel_pass = sim::microseconds(10);
  /// One context switch.
  sim::Duration context_switch = sim::microseconds(5);
  /// eBPF sockmap socket-to-socket redirect.
  sim::Duration ebpf_redirect = sim::microseconds(2);
  /// Full L7 work per request: parse, route-table lookup, header rewrite,
  /// upstream selection, proxying.
  sim::Duration l7_process = sim::microseconds(28);
  /// L7 work on the response direction (response filters, telemetry).
  sim::Duration l7_response_process = sim::microseconds(120);
  /// L4 connection forwarding per request.
  sim::Duration l4_forward = sim::microseconds(6);
  /// Copy cost per KiB moved between sockets.
  sim::Duration memcpy_per_kib = sim::nanoseconds(500);
  /// TCP maximum segment size used by the Nagle aggregator.
  std::uint32_t mss_bytes = 1448;

  crypto::CryptoCostModel crypto;

  [[nodiscard]] sim::Duration memcpy_cost(std::uint64_t bytes) const {
    return static_cast<sim::Duration>(
        static_cast<double>(memcpy_per_kib) *
        (static_cast<double>(bytes) / 1024.0));
  }

  /// CPU cost of redirecting `bytes` of app traffic into a co-located proxy
  /// (one side). `segments` is how many wire segments carry the bytes —
  /// with Nagle aggregation small writes coalesce into fewer segments,
  /// cutting per-segment context switches (Fig 22).
  [[nodiscard]] sim::Duration redirect_cost(RedirectMode mode,
                                            std::uint64_t bytes,
                                            std::uint64_t segments) const {
    if (segments == 0) segments = 1;
    const auto per_segment = static_cast<sim::Duration>(segments);
    switch (mode) {
      case RedirectMode::kNone:
        return 0;
      case RedirectMode::kIptables:
        // Two extra kernel passes + two context switches per segment, plus
        // the copy in and out of the proxy.
        return per_segment * (2 * kernel_pass + 2 * context_switch) +
               2 * memcpy_cost(bytes);
      case RedirectMode::kEbpf:
        // Socket-to-socket: one redirect + one context switch per segment,
        // single copy.
        return per_segment * (ebpf_redirect + context_switch) +
               memcpy_cost(bytes);
    }
    return 0;
  }
};

}  // namespace canal::proxy
