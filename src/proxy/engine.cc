#include "proxy/engine.h"

#include <utility>

namespace canal::proxy {

ProxyEngine::ProxyEngine(sim::EventLoop& loop, sim::CpuSet& cpu, Config config,
                         sim::Rng rng)
    : loop_(loop),
      cpu_(cpu),
      config_(std::move(config)),
      rng_(rng),
      sessions_(config_.session_capacity),
      span_main_(config_.name + (config_.l7 ? "/l7" : "/l4")),
      span_resp_(config_.name + (config_.l7 ? "/l7-resp" : "/l4-resp")),
      span_inbound_(config_.name + "/inbound"),
      span_handshake_(config_.name + "/handshake"),
      span_reject_(config_.name + "/reject"),
      span_inbound_reject_(config_.name + "/inbound-reject"),
      span_fastpath_(config_.name + "/fastpath_hit") {}

void ProxyEngine::set_route_table(net::ServiceId service,
                                  http::RouteTable table) {
  // Rule pointers cached by the fastpath go stale: move the epoch.
  ++route_epoch_;
  routes_[service] = std::move(table);
}

const http::RouteTable* ProxyEngine::route_table(
    net::ServiceId service) const {
  const auto it = routes_.find(service);
  return it == routes_.end() ? nullptr : &it->second;
}

std::size_t ProxyEngine::config_bytes() const {
  std::size_t total = 512;  // listener/bootstrap framing
  for (const auto& [service, table] : routes_) {
    total += table.config_bytes() + 32;
  }
  return total;
}

sim::Duration ProxyEngine::request_cpu_cost(std::uint64_t bytes,
                                            bool new_connection) const {
  const auto& costs = config_.costs;
  const std::uint64_t segments = bytes / costs.mss_bytes + 1;
  sim::Duration cost = costs.redirect_cost(config_.redirect, bytes, segments);
  cost += config_.l7 ? costs.l7_process : costs.l4_forward;
  cost += costs.memcpy_cost(bytes);
  if (config_.mtls) {
    cost += costs.crypto.symmetric_cost(bytes);
    if (new_connection) {
      // Symmetric parts of the handshake (record protection setup);
      // the asymmetric part goes through the handshake executor.
      cost += costs.crypto.symmetric_cost(512);
    }
  }
  return cost;
}

void ProxyEngine::handle_request(const net::FiveTuple& tuple,
                                 net::ServiceId dst_service,
                                 bool new_connection, http::Request& req,
                                 RequestCallback done,
                                 telemetry::Trace* trace) {
  ++requests_total_;
  const std::uint64_t bytes = req.wire_size();
  bytes_proxied_ += bytes;
  const telemetry::Component component =
      config_.l7 ? telemetry::Component::kL7 : telemetry::Component::kL4;

  if (new_connection) {
    if (!sessions_.insert(tuple, dst_service, loop_.now())) {
      ++requests_failed_;
      RequestOutcome outcome;
      outcome.status = 503;  // session table exhausted
      if (trace != nullptr) {
        trace->add(span_reject_, component, loop_.now(),
                   loop_.now(), 0, bytes, outcome.status);
      }
      loop_.post(0, [done = std::move(done), outcome] { done(outcome); });
      return;
    }
  } else {
    // Keep-alive refresh only; the session pointer is not needed here.
    static_cast<void>(sessions_.touch(tuple, loop_.now()));
  }
  if (observer_) observer_(dst_service, tuple, bytes, new_connection);

  CallState* cs = calls_.acquire();
  cs->self = this;
  cs->tuple = tuple;
  cs->dst_service = dst_service;
  cs->req = &req;
  cs->bytes = bytes;
  cs->hash = net::flow_hash(tuple);
  cs->component = component;
  cs->trace = trace;
  cs->done = std::move(done);
  const sim::Duration cpu_cost = request_cpu_cost(bytes, new_connection);
  cs->on_path = static_cast<sim::Duration>(
      static_cast<double>(cpu_cost) * (1.0 - config_.off_path_fraction));
  cs->off_path = cpu_cost - cs->on_path;

  if (config_.mtls && new_connection && handshake_executor_) {
    ++handshakes_;
    if (trace == nullptr) {
      handshake_executor_([cs] { cs->self->continue_request(cs); });
    } else {
      cs->hs_start = loop_.now();
      handshake_executor_([cs] {
        cs->trace->add(cs->self->span_handshake_,
                       telemetry::Component::kHandshake, cs->hs_start,
                       cs->self->loop_.now());
        cs->self->continue_request(cs);
      });
    }
  } else {
    continue_request(cs);
  }
}

void ProxyEngine::continue_request(CallState* cs) {
  // The pinned core is deterministic, so its backlog before enqueueing is
  // exactly the FCFS queue wait this job will experience.
  cs->cpu_start = loop_.now();
  cs->queue_wait =
      cs->trace != nullptr ? cpu_.core(cs->hash % cpu_.size()).backlog() : 0;
  cpu_.execute_pinned(cs->hash, cs->on_path, [cs] {
    ProxyEngine& self = *cs->self;
    if (cs->trace != nullptr) {
      cs->trace->add(self.span_main_, cs->component, cs->cpu_start,
                     self.loop_.now(), cs->queue_wait, cs->bytes);
    }
    self.finish_request(cs->tuple, cs->dst_service, *cs->req,
                        std::move(cs->done), cs->trace);
    self.calls_.release(cs);
  });
  // Off-path work (logging/stats) consumes pool capacity without gating
  // this request's completion; it lands on the least-loaded core so the
  // same flow's next hop through a shared pool isn't blocked by it.
  if (cs->off_path > 0) cpu_.execute(cs->off_path);
}

void ProxyEngine::finish_request(const net::FiveTuple& tuple,
                                 net::ServiceId dst_service,
                                 http::Request& req, RequestCallback done,
                                 telemetry::Trace* trace) {
  RequestOutcome outcome;
  UpstreamCluster* cluster = nullptr;

  const std::uint64_t epoch = fastpath_epoch();
  const std::size_t slot_index = net::flow_hash(tuple) & (kFastpathSlots - 1);
  FastpathEntry* entry = nullptr;
  if (!fastpath_.empty()) {
    FastpathEntry& slot = fastpath_[slot_index];
    if (slot.epoch == epoch && slot.service == dst_service &&
        slot.tuple == tuple) {
      entry = &slot;
    }
  }

  if (config_.l7) {
    if (entry != nullptr && entry->rule != nullptr &&
        entry->rule->match.matches(req)) {
      // Fastpath hit: the memoized rule is the table's first, so the
      // re-verified match IS the first-match-wins result. Consume the
      // uniform draw and apply mutations exactly as resolve() would.
      ++fastpath_hits_;
      const http::RouteRule* rule = entry->rule;
      const std::size_t idx = rule->action.pick_index(rng_.uniform());
      cluster = entry->clusters[idx];
      rule->apply(req);
      if (trace != nullptr) {
        trace->add(span_fastpath_, telemetry::Component::kFastpath,
                   loop_.now(), loop_.now());
      }
      if (cluster == nullptr) {
        ++requests_failed_;
        outcome.status = 502;
        done(outcome);
        return;
      }
      outcome.cluster = cluster->name();
    } else {
      ++fastpath_misses_;
      const auto it = routes_.find(dst_service);
      if (it == routes_.end()) {
        ++requests_failed_;
        outcome.status = 404;
        done(outcome);
        return;
      }
      // Route resolution may mutate headers/path per the matched action.
      const auto result = it->second.resolve(req, rng_.uniform());
      if (!result) {
        ++requests_failed_;
        outcome.status = 404;
        done(outcome);
        return;
      }
      if (result->direct_response) {
        outcome.status = result->direct_status;
        outcome.ok = result->direct_status < 400;
        done(outcome);
        return;
      }
      cluster = clusters_.find(result->cluster);
      if (cluster == nullptr) {
        ++requests_failed_;
        outcome.status = 502;
        done(outcome);
        return;
      }
      outcome.cluster = cluster->name();  // stable storage, not the local
      // Memoize only first-rule matches: re-verifying that rule's match
      // on a hit then preserves first-match-wins exactly.
      const auto& weighted = result->rule->action.clusters;
      if (result->rule == &it->second.rules().front() &&
          weighted.size() <= FastpathEntry::kMaxClusters) {
        if (fastpath_.empty()) fastpath_.resize(kFastpathSlots);
        FastpathEntry& slot = fastpath_[slot_index];
        slot.tuple = tuple;
        slot.epoch = epoch;
        slot.service = dst_service;
        slot.rule = result->rule;
        slot.cluster_count = static_cast<std::uint8_t>(weighted.size());
        for (std::size_t i = 0; i < weighted.size(); ++i) {
          slot.clusters[i] = clusters_.find(weighted[i].cluster);
        }
      }
    }
  } else {
    if (entry != nullptr) {
      // L4 fastpath: skip the per-request cluster-name build + lookup.
      ++fastpath_hits_;
      cluster = entry->clusters[0];
      if (trace != nullptr) {
        trace->add(span_fastpath_, telemetry::Component::kFastpath,
                   loop_.now(), loop_.now());
      }
    } else {
      ++fastpath_misses_;
      // L4: the "cluster" is the destination service itself.
      std::string cluster_name =
          "service-" + std::to_string(net::id_value(dst_service));
      cluster = clusters_.find(cluster_name);
      if (cluster != nullptr) {
        if (fastpath_.empty()) fastpath_.resize(kFastpathSlots);
        FastpathEntry& slot = fastpath_[slot_index];
        slot.tuple = tuple;
        slot.epoch = epoch;
        slot.service = dst_service;
        slot.rule = nullptr;
        slot.clusters[0] = cluster;
        slot.cluster_count = 1;
      }
    }
    if (cluster == nullptr) {
      ++requests_failed_;
      outcome.status = 502;
      done(outcome);
      return;
    }
    outcome.cluster = cluster->name();
  }

  UpstreamEndpoint* endpoint = cluster->pick(rng_);
  if (endpoint == nullptr) {
    ++requests_failed_;
    outcome.status = 503;
    done(outcome);
    return;
  }
  ++endpoint->active_requests;
  outcome.ok = true;
  outcome.status = 200;
  outcome.endpoint = endpoint;
  done(outcome);
}

void ProxyEngine::handle_inbound(const net::FiveTuple& tuple,
                                 net::ServiceId dst_service,
                                 bool new_connection, std::uint64_t bytes,
                                 std::function<void(bool, int)> done,
                                 telemetry::Trace* trace) {
  ++requests_total_;
  bytes_proxied_ += bytes;
  const telemetry::Component component =
      config_.l7 ? telemetry::Component::kL7 : telemetry::Component::kL4;
  if (new_connection) {
    if (!sessions_.insert(tuple, dst_service, loop_.now())) {
      ++requests_failed_;
      if (trace != nullptr) {
        trace->add(span_inbound_reject_, component, loop_.now(),
                   loop_.now(), 0, bytes, 503);
      }
      loop_.post(0, [done = std::move(done)] { done(false, 503); });
      return;
    }
  } else {
    // Keep-alive refresh only; the session pointer is not needed here.
    static_cast<void>(sessions_.touch(tuple, loop_.now()));
  }
  if (observer_) observer_(dst_service, tuple, bytes, new_connection);

  CallState* cs = calls_.acquire();
  cs->self = this;
  cs->bytes = bytes;
  cs->hash = net::flow_hash(tuple);
  cs->component = component;
  cs->trace = trace;
  cs->done_inbound = std::move(done);
  const sim::Duration cpu_cost = request_cpu_cost(bytes, new_connection);
  cs->on_path = static_cast<sim::Duration>(
      static_cast<double>(cpu_cost) * (1.0 - config_.off_path_fraction));
  cs->off_path = cpu_cost - cs->on_path;
  if (config_.mtls && new_connection && handshake_executor_) {
    ++handshakes_;
    if (trace == nullptr) {
      handshake_executor_([cs] { cs->self->continue_inbound(cs); });
    } else {
      cs->hs_start = loop_.now();
      handshake_executor_([cs] {
        cs->trace->add(cs->self->span_handshake_,
                       telemetry::Component::kHandshake, cs->hs_start,
                       cs->self->loop_.now());
        cs->self->continue_inbound(cs);
      });
    }
  } else {
    continue_inbound(cs);
  }
}

void ProxyEngine::continue_inbound(CallState* cs) {
  cs->cpu_start = loop_.now();
  cs->queue_wait =
      cs->trace != nullptr ? cpu_.core(cs->hash % cpu_.size()).backlog() : 0;
  cpu_.execute_pinned(cs->hash, cs->on_path, [cs] {
    ProxyEngine& self = *cs->self;
    if (cs->trace != nullptr) {
      cs->trace->add(self.span_inbound_, cs->component, cs->cpu_start,
                     self.loop_.now(), cs->queue_wait, cs->bytes);
    }
    auto done = std::move(cs->done_inbound);
    self.calls_.release(cs);
    done(true, 200);
  });
  if (cs->off_path > 0) cpu_.execute(cs->off_path);
}

void ProxyEngine::handle_response(const net::FiveTuple& tuple,
                                  std::uint64_t bytes,
                                  std::function<void()> done,
                                  telemetry::Trace* trace) {
  bytes_proxied_ += bytes;
  const auto& costs = config_.costs;
  const std::uint64_t segments = bytes / costs.mss_bytes + 1;
  sim::Duration cost = costs.redirect_cost(config_.redirect, bytes, segments);
  cost += (config_.l7 ? costs.l7_response_process : costs.l4_forward) +
          costs.memcpy_cost(bytes);
  if (config_.mtls) cost += costs.crypto.symmetric_cost(bytes);
  const auto on_path = static_cast<sim::Duration>(
      static_cast<double>(cost) * (1.0 - config_.off_path_fraction));
  const std::uint64_t hash = net::flow_hash(tuple);
  if (trace == nullptr) {
    cpu_.execute_pinned(hash, on_path, std::move(done));
  } else {
    const sim::TimePoint cpu_start = loop_.now();
    const sim::Duration queue_wait = cpu_.core(hash % cpu_.size()).backlog();
    const telemetry::Component component =
        config_.l7 ? telemetry::Component::kL7 : telemetry::Component::kL4;
    cpu_.execute_pinned(
        hash, on_path,
        [this, bytes, component, trace, cpu_start, queue_wait,
         done = std::move(done)] {
          trace->add(span_resp_, component, cpu_start, loop_.now(),
                     queue_wait, bytes);
          done();
        });
  }
  if (cost > on_path) cpu_.execute(cost - on_path);
}

void ProxyEngine::close_connection(const net::FiveTuple& tuple) {
  sessions_.remove(tuple);
}

}  // namespace canal::proxy
