#include "proxy/session_table.h"

namespace canal::proxy {

bool SessionTable::insert(const net::FiveTuple& tuple, net::ServiceId service,
                          sim::TimePoint now) {
  if (sessions_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  sessions_[tuple] = Session{tuple, service, now, now};
  return true;
}

Session* SessionTable::touch(const net::FiveTuple& tuple, sim::TimePoint now) {
  const auto it = sessions_.find(tuple);
  if (it == sessions_.end()) return nullptr;
  it->second.last_active = now;
  return &it->second;
}

const Session* SessionTable::find(const net::FiveTuple& tuple) const {
  const auto it = sessions_.find(tuple);
  return it == sessions_.end() ? nullptr : &it->second;
}

bool SessionTable::remove(const net::FiveTuple& tuple) {
  if (sessions_.erase(tuple) == 0) return false;
  ++drop_epoch_;
  return true;
}

std::size_t SessionTable::expire_idle(sim::TimePoint now,
                                      sim::Duration idle_timeout) {
  std::size_t dropped = 0;
  // Tombstoned erase never moves other slots, so erasing the current
  // position and then advancing is safe.
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (now - it->second.last_active > idle_timeout) {
      sessions_.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0) ++drop_epoch_;
  return dropped;
}

std::size_t SessionTable::clear() noexcept {
  const std::size_t n = sessions_.size();
  sessions_.clear();
  if (n > 0) ++drop_epoch_;
  return n;
}

std::size_t SessionTable::count_for(net::ServiceId service) const {
  std::size_t n = 0;
  for (const auto& [tuple, session] : sessions_) {
    if (session.service == service) ++n;
  }
  return n;
}

std::size_t SessionTable::count_older_than(net::ServiceId service,
                                           sim::TimePoint now,
                                           sim::Duration age) const {
  std::size_t n = 0;
  for (const auto& [tuple, session] : sessions_) {
    if (session.service == service && now - session.created > age) ++n;
  }
  return n;
}

std::size_t SessionTable::remove_for(net::ServiceId service) {
  std::size_t dropped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->second.service == service) {
      sessions_.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0) ++drop_epoch_;
  return dropped;
}

}  // namespace canal::proxy
