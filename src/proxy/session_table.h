// Connection session table with finite capacity.
//
// Gateway replicas run on VMs whose session state lives in SmartNIC memory
// (§3.2 Issue #4): capacity is a hard resource. The table supports idle
// expiry and exposes occupancy — the signal behind both the session-flood
// attack detection of §6.2 (sessions surge without RPS) and the
// session-aggregation motivation (90% sessions at 20% CPU).
#pragma once

#include <cstdint>

#include "net/flow.h"
#include "net/ids.h"
#include "sim/flat_map.h"
#include "sim/time.h"

namespace canal::proxy {

struct Session {
  net::FiveTuple tuple;
  net::ServiceId service{};
  sim::TimePoint created = 0;
  sim::TimePoint last_active = 0;
};

class SessionTable {
 public:
  explicit SessionTable(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts a new session; false when the table is full (flow rejected).
  bool insert(const net::FiveTuple& tuple, net::ServiceId service,
              sim::TimePoint now);

  /// Looks up and refreshes last_active.
  [[nodiscard]] Session* touch(const net::FiveTuple& tuple, sim::TimePoint now);
  [[nodiscard]] const Session* find(const net::FiveTuple& tuple) const;

  bool remove(const net::FiveTuple& tuple);

  /// Drops sessions idle longer than `idle_timeout`; returns count dropped.
  std::size_t expire_idle(sim::TimePoint now, sim::Duration idle_timeout);

  /// Drops every session (lossy migration resets all state).
  std::size_t clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double occupancy() const noexcept {
    return capacity_ == 0
               ? 0.0
               : static_cast<double>(sessions_.size()) /
                     static_cast<double>(capacity_);
  }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  /// Sessions belonging to `service`.
  [[nodiscard]] std::size_t count_for(net::ServiceId service) const;

  /// Drops every session of `service` (lossy migration of one tenant
  /// service); returns count dropped.
  std::size_t remove_for(net::ServiceId service);

  /// Sessions of `service` established more than `age` ago — the
  /// long-lasting sessions §6.3's migration selection avoids.
  [[nodiscard]] std::size_t count_older_than(net::ServiceId service,
                                             sim::TimePoint now,
                                             sim::Duration age) const;

  /// Monotonic counter bumped whenever session state is actually dropped
  /// (remove of an existing session, idle expiry, clear, remove_for). The
  /// proxy fastpath cache validates against this, so any session
  /// reset/expiry forces cached flow decisions to be re-derived. Removes
  /// that drop nothing (e.g. closing a sessionless flow) do not bump it.
  [[nodiscard]] std::uint64_t drop_epoch() const noexcept {
    return drop_epoch_;
  }

 private:
  std::size_t capacity_;
  // Flat open-addressing table: the per-request insert/touch/find path is
  // one probe run over contiguous slots. Iterating consumers (counts,
  // expiry) aggregate order-independently, so the hash order is safe.
  sim::FlatHashMap<net::FiveTuple, Session> sessions_;
  std::uint64_t rejected_ = 0;
  std::uint64_t drop_epoch_ = 0;
};

}  // namespace canal::proxy
