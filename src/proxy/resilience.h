// Client-side resilience stages shared by every dataplane: per-tenant
// token-bucket rate limiting, a per-service circuit breaker with half-open
// probing, and per-endpoint outlier detection that ejects hosts from the
// load-balancing set (DESIGN.md §13).
//
// The stages run in a fixed order inside the retry layer — rate limit ->
// breaker -> retry — so a rate-limited request never consumes a breaker
// probe and a breaker fast-fail never burns retry budget. All state is
// driven by simulated time pulled from the owning event loop: the breaker
// has no timers (open -> half-open is computed lazily at the next
// admission), and the token bucket refills arithmetically from the elapsed
// sim-time, so identical admission sequences produce identical decisions
// regardless of --jobs or wall-clock scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "net/ids.h"
#include "sim/event_loop.h"
#include "sim/time.h"
#include "telemetry/registry.h"

namespace canal::proxy {

/// Per-service circuit breaker: `consecutive_errors` 5xx in a row open the
/// breaker; after `base_ejection_time` it goes half-open and admits one
/// probe whose outcome settles the state (per the Envoy-style
/// outlier_detection knobs in SNIPPETS.md).
struct BreakerConfig {
  std::uint32_t consecutive_errors = 5;
  sim::Duration base_ejection_time = sim::seconds(30);
};

/// Per-endpoint outlier ejection: an endpoint answering
/// `consecutive_errors` 5xx in a row is ejected from the LB set for
/// `base_ejection_time`, but never beyond `max_ejection_percent` of the
/// service's endpoints (the bound is strict — an ejection that would
/// exceed it is skipped, keeping capacity available).
struct OutlierConfig {
  std::uint32_t consecutive_errors = 5;
  sim::Duration base_ejection_time = sim::seconds(30);
  std::uint32_t max_ejection_percent = 50;
};

/// Per-tenant token bucket: each tenant gets its own bucket with the same
/// rate/burst; a request with no tokens left is rejected with 429 before
/// any attempt is made (and before any breaker/retry state is touched).
struct RateLimitConfig {
  double tokens_per_second = 100.0;
  double burst = 20.0;
};

/// Which stages are armed. Unset stages are skipped entirely.
struct ResilienceConfig {
  std::optional<RateLimitConfig> rate_limit;
  std::optional<BreakerConfig> breaker;
  std::optional<OutlierConfig> outlier;
};

/// Lazy three-state breaker. All transitions happen inside try_admit /
/// on_result calls at the caller-supplied sim-time; there are no
/// scheduled callbacks, so the breaker is trivially deterministic.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  /// Admission check for one attempt. In half-open state exactly one
  /// probe is admitted; a probe whose completion never arrives (dropped
  /// on the wire with no per-try timeout) is considered lost after
  /// another base_ejection_time and a new probe is admitted.
  [[nodiscard]] bool try_admit(sim::TimePoint now);

  /// Side-effect-free check used by the retry layer before scheduling a
  /// retry: false only while the breaker is inside its open window.
  [[nodiscard]] bool attempt_allowed(sim::TimePoint now) const;

  /// Feeds one attempt outcome (error = final status >= 500). While
  /// half-open, the first completion — probe or straggler — settles the
  /// state: success closes, error re-opens.
  void on_result(sim::TimePoint now, bool error);

  [[nodiscard]] State state(sim::TimePoint now) const;
  /// Monotonic count of state transitions (the disturbance epoch input).
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t opens() const noexcept { return opens_; }

 private:
  void refresh(sim::TimePoint now);

  BreakerConfig config_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_errors_ = 0;
  sim::TimePoint opened_at_ = 0;
  bool probe_outstanding_ = false;
  sim::TimePoint probe_sent_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t opens_ = 0;
};

/// Sim-time token bucket. Refill is closed-form from the elapsed time, so
/// a fixed admission schedule yields bit-identical decisions everywhere.
class TokenBucket {
 public:
  TokenBucket(const RateLimitConfig& config, sim::TimePoint now)
      : config_(config), tokens_(config.burst), last_(now) {}

  /// Consumes one token if available; false = rate-limited.
  [[nodiscard]] bool try_consume(sim::TimePoint now);

  [[nodiscard]] double tokens(sim::TimePoint now) const;

 private:
  RateLimitConfig config_;
  double tokens_;
  sim::TimePoint last_;
};

/// Per-endpoint consecutive-error tracking for one service, bounded by
/// max_ejection_percent of the (caller-supplied) endpoint total.
class OutlierDetector {
 public:
  explicit OutlierDetector(OutlierConfig config) : config_(config) {}

  /// Feeds one attempt outcome for `key`; true = the endpoint crossed the
  /// threshold and was ejected (the caller must remove it from the LB set
  /// and schedule readmission after config().base_ejection_time).
  [[nodiscard]] bool on_result(std::uint64_t key, bool error,
                               std::size_t endpoint_total);

  /// Clears an ejection; false when `key` was not ejected (e.g. already
  /// readmitted). The caller restores the endpoint on true.
  [[nodiscard]] bool readmit(std::uint64_t key);

  [[nodiscard]] bool ejected(std::uint64_t key) const;
  [[nodiscard]] std::uint32_t ejected_count() const noexcept {
    return ejected_count_;
  }
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] const OutlierConfig& config() const noexcept {
    return config_;
  }

 private:
  struct EndpointState {
    std::uint32_t consecutive_errors = 0;
    bool ejected = false;
  };

  OutlierConfig config_;
  std::unordered_map<std::uint64_t, EndpointState> endpoints_;
  std::uint32_t ejected_count_ = 0;
  std::uint64_t transitions_ = 0;
};

/// The composed filter chain one dataplane owns. The chain is dataplane-
/// agnostic: it reaches the plane's LB sets only through Hooks, so the
/// same stages serve NoMesh's direct endpoint list, sidecar/waypoint
/// engines and the gateway replicas alike.
class ResilienceChain {
 public:
  struct Hooks {
    /// Flip `key`'s health in every LB set the plane keeps for `service`
    /// (engine planes bump their cluster version here, invalidating flow
    /// fastpath caches).
    std::function<void(net::ServiceId, std::uint64_t, bool)>
        set_endpoint_health;
    /// Denominator for the max_ejection_percent bound.
    std::function<std::size_t(net::ServiceId)> endpoint_total;
    /// Clock + readmission scheduling. Must outlive the chain.
    sim::EventLoop* loop = nullptr;
  };

  struct Admission {
    bool admitted = true;
    int status = 0;  ///< 429 (rate limit) or 503 (breaker) when rejected
    bool rate_limited = false;
  };

  ResilienceChain(ResilienceConfig config, Hooks hooks)
      : config_(config), hooks_(std::move(hooks)) {}

  /// Stage order rate limit -> breaker, evaluated at the head of one
  /// logical request (before the first attempt). Tokens are consumed here
  /// only — retries of an admitted request are free, so the rate-limit
  /// decision depends solely on the logical-request arrival schedule.
  [[nodiscard]] Admission admit(net::TenantId tenant, net::ServiceId service);

  /// Breaker check before scheduling a retry attempt (no probe consumed).
  [[nodiscard]] bool attempt_allowed(net::ServiceId service) const;

  /// Feeds one completed attempt into breaker + outlier stages.
  /// `endpoint_key` 0 = no endpoint was reached (e.g. 503 no-healthy /
  /// 504 timeout); the breaker still counts it, the outlier stage skips.
  void on_attempt_result(net::ServiceId service, std::uint64_t endpoint_key,
                         int status);

  /// Monotonic per-service counter bumped on every breaker transition and
  /// every ejection/readmission. A request that observes different epochs
  /// at send and completion ran through a resilience disturbance.
  [[nodiscard]] std::uint64_t disturbance_epoch(net::ServiceId service) const;
  /// True while the service's breaker is not closed or any of its
  /// endpoints is ejected.
  [[nodiscard]] bool disturbed(net::ServiceId service) const;

  [[nodiscard]] const ResilienceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const CircuitBreaker* breaker(net::ServiceId service) const;
  [[nodiscard]] const OutlierDetector* outlier(net::ServiceId service) const;

  // --- counters (exported by publish_metrics) -------------------------
  [[nodiscard]] std::uint64_t rate_limited_total() const noexcept {
    return rate_limited_total_;
  }
  [[nodiscard]] std::uint64_t breaker_rejected_total() const noexcept {
    return breaker_rejected_total_;
  }
  [[nodiscard]] std::uint64_t ejections_total() const noexcept {
    return ejections_total_;
  }
  [[nodiscard]] std::uint64_t readmissions_total() const noexcept {
    return readmissions_total_;
  }

  /// Writes resilience counters into `registry`:
  /// resilience_rate_limited_total{tenant=...}, resilience_breaker_
  /// {rejected,opens}_total{service=...}, resilience_{ejections,
  /// readmissions}_total{service=...}. Deterministic (map-ordered).
  void publish_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  ResilienceConfig config_;
  Hooks hooks_;
  std::map<net::TenantId, TokenBucket> buckets_;
  std::map<net::ServiceId, CircuitBreaker> breakers_;
  std::map<net::ServiceId, OutlierDetector> outliers_;
  std::map<net::TenantId, std::uint64_t> rate_limited_by_tenant_;
  std::map<net::ServiceId, std::uint64_t> ejections_by_service_;
  std::map<net::ServiceId, std::uint64_t> readmissions_by_service_;
  std::uint64_t rate_limited_total_ = 0;
  std::uint64_t breaker_rejected_total_ = 0;
  std::uint64_t ejections_total_ = 0;
  std::uint64_t readmissions_total_ = 0;

  [[nodiscard]] CircuitBreaker* breaker_for(net::ServiceId service);
  [[nodiscard]] OutlierDetector* outlier_for(net::ServiceId service);
  void eject(net::ServiceId service, std::uint64_t key);
};

}  // namespace canal::proxy
