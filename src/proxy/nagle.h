// Nagle-style small-write aggregation for the eBPF redirection path.
//
// eBPF sockmap redirection bypasses the kernel stack and with it the Nagle
// algorithm, so a chatty app writing 16-byte messages would trigger a
// context switch per write (Fig 22). This buffer re-implements Nagle in
// front of the redirect: writes coalesce until a full MSS accumulates or
// the flush timer fires (RFC 896 semantics: flush immediately when nothing
// is in flight).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace canal::proxy {

class NagleBuffer {
 public:
  /// `on_flush(bytes, writes)` is invoked for every emitted segment batch.
  NagleBuffer(sim::EventLoop& loop, std::uint32_t mss_bytes,
              sim::Duration flush_timeout,
              std::function<void(std::uint64_t bytes, std::uint32_t writes)>
                  on_flush)
      : loop_(loop),
        mss_(mss_bytes),
        timeout_(flush_timeout),
        on_flush_(std::move(on_flush)) {}

  NagleBuffer(const NagleBuffer&) = delete;
  NagleBuffer& operator=(const NagleBuffer&) = delete;
  ~NagleBuffer() { timer_.cancel(); }

  /// Buffers one application write of `bytes`.
  void write(std::uint64_t bytes);

  /// Emits any buffered data immediately (connection close, PSH).
  void flush();

  [[nodiscard]] std::uint64_t buffered_bytes() const noexcept {
    return buffered_bytes_;
  }
  [[nodiscard]] std::uint64_t segments_emitted() const noexcept {
    return segments_emitted_;
  }
  [[nodiscard]] std::uint64_t writes_accepted() const noexcept {
    return writes_accepted_;
  }

 private:
  void emit(std::uint64_t bytes, std::uint32_t writes);

  sim::EventLoop& loop_;
  std::uint32_t mss_;
  sim::Duration timeout_;
  std::function<void(std::uint64_t, std::uint32_t)> on_flush_;
  std::uint64_t buffered_bytes_ = 0;
  std::uint32_t buffered_writes_ = 0;
  std::uint64_t segments_emitted_ = 0;
  std::uint64_t writes_accepted_ = 0;
  sim::EventHandle timer_;
};

}  // namespace canal::proxy
