#include "proxy/resilience.h"

#include <algorithm>
#include <string>

namespace canal::proxy {

// --- CircuitBreaker ---------------------------------------------------

void CircuitBreaker::refresh(sim::TimePoint now) {
  if (state_ == State::kOpen &&
      now >= opened_at_ + config_.base_ejection_time) {
    state_ = State::kHalfOpen;
    probe_outstanding_ = false;
    ++transitions_;
  }
}

bool CircuitBreaker::try_admit(sim::TimePoint now) {
  refresh(now);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      ++rejected_;
      return false;
    case State::kHalfOpen:
      if (!probe_outstanding_ ||
          now >= probe_sent_ + config_.base_ejection_time) {
        probe_outstanding_ = true;
        probe_sent_ = now;
        return true;
      }
      ++rejected_;
      return false;
  }
  return true;
}

bool CircuitBreaker::attempt_allowed(sim::TimePoint now) const {
  // The open window, computed without mutating (the lazy open -> half-open
  // flip happens on the next try_admit/on_result).
  return !(state_ == State::kOpen &&
           now < opened_at_ + config_.base_ejection_time);
}

void CircuitBreaker::on_result(sim::TimePoint now, bool error) {
  refresh(now);
  switch (state_) {
    case State::kHalfOpen:
      // First completion settles the breaker — the probe, or a straggler
      // from before the breaker opened; either is fresh evidence.
      probe_outstanding_ = false;
      consecutive_errors_ = 0;
      if (error) {
        state_ = State::kOpen;
        opened_at_ = now;
        ++opens_;
      } else {
        state_ = State::kClosed;
      }
      ++transitions_;
      return;
    case State::kOpen:
      // Straggler completing inside the open window: no new evidence.
      return;
    case State::kClosed:
      if (!error) {
        consecutive_errors_ = 0;
        return;
      }
      if (++consecutive_errors_ >= config_.consecutive_errors) {
        state_ = State::kOpen;
        opened_at_ = now;
        consecutive_errors_ = 0;
        ++opens_;
        ++transitions_;
      }
      return;
  }
}

CircuitBreaker::State CircuitBreaker::state(sim::TimePoint now) const {
  if (state_ == State::kOpen &&
      now >= opened_at_ + config_.base_ejection_time) {
    return State::kHalfOpen;
  }
  return state_;
}

// --- TokenBucket ------------------------------------------------------

bool TokenBucket::try_consume(sim::TimePoint now) {
  tokens_ = tokens(now);
  last_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::tokens(sim::TimePoint now) const {
  const double refilled =
      tokens_ + sim::to_seconds(now - last_) * config_.tokens_per_second;
  return std::min(config_.burst, refilled);
}

// --- OutlierDetector --------------------------------------------------

bool OutlierDetector::on_result(std::uint64_t key, bool error,
                                std::size_t endpoint_total) {
  EndpointState& ep = endpoints_[key];
  if (ep.ejected) return false;  // stragglers from an ejected endpoint
  if (!error) {
    ep.consecutive_errors = 0;
    return false;
  }
  if (++ep.consecutive_errors < config_.consecutive_errors) return false;
  ep.consecutive_errors = 0;
  // Strict bound: ejecting must keep ejected/total within the percent cap.
  if (endpoint_total == 0 ||
      (static_cast<std::uint64_t>(ejected_count_) + 1) * 100 >
          static_cast<std::uint64_t>(config_.max_ejection_percent) *
              endpoint_total) {
    return false;
  }
  ep.ejected = true;
  ++ejected_count_;
  ++transitions_;
  return true;
}

bool OutlierDetector::readmit(std::uint64_t key) {
  const auto it = endpoints_.find(key);
  if (it == endpoints_.end() || !it->second.ejected) return false;
  it->second.ejected = false;
  it->second.consecutive_errors = 0;
  --ejected_count_;
  ++transitions_;
  return true;
}

bool OutlierDetector::ejected(std::uint64_t key) const {
  const auto it = endpoints_.find(key);
  return it != endpoints_.end() && it->second.ejected;
}

// --- ResilienceChain --------------------------------------------------

CircuitBreaker* ResilienceChain::breaker_for(net::ServiceId service) {
  if (!config_.breaker.has_value()) return nullptr;
  auto it = breakers_.find(service);
  if (it == breakers_.end()) {
    it = breakers_.emplace(service, CircuitBreaker(*config_.breaker)).first;
  }
  return &it->second;
}

OutlierDetector* ResilienceChain::outlier_for(net::ServiceId service) {
  if (!config_.outlier.has_value()) return nullptr;
  auto it = outliers_.find(service);
  if (it == outliers_.end()) {
    it = outliers_.emplace(service, OutlierDetector(*config_.outlier)).first;
  }
  return &it->second;
}

const CircuitBreaker* ResilienceChain::breaker(net::ServiceId service) const {
  const auto it = breakers_.find(service);
  return it == breakers_.end() ? nullptr : &it->second;
}

const OutlierDetector* ResilienceChain::outlier(net::ServiceId service) const {
  const auto it = outliers_.find(service);
  return it == outliers_.end() ? nullptr : &it->second;
}

ResilienceChain::Admission ResilienceChain::admit(net::TenantId tenant,
                                                  net::ServiceId service) {
  const sim::TimePoint now = hooks_.loop->now();
  if (config_.rate_limit.has_value()) {
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_.emplace(tenant, TokenBucket(*config_.rate_limit, now))
               .first;
    }
    if (!it->second.try_consume(now)) {
      ++rate_limited_total_;
      ++rate_limited_by_tenant_[tenant];
      return Admission{false, 429, true};
    }
  }
  if (CircuitBreaker* breaker = breaker_for(service)) {
    if (!breaker->try_admit(now)) {
      ++breaker_rejected_total_;
      return Admission{false, 503, false};
    }
  }
  return Admission{};
}

bool ResilienceChain::attempt_allowed(net::ServiceId service) const {
  const CircuitBreaker* b = breaker(service);
  return b == nullptr || b->attempt_allowed(hooks_.loop->now());
}

void ResilienceChain::on_attempt_result(net::ServiceId service,
                                        std::uint64_t endpoint_key,
                                        int status) {
  const sim::TimePoint now = hooks_.loop->now();
  const bool error = status >= 500;
  if (CircuitBreaker* breaker = breaker_for(service)) {
    breaker->on_result(now, error);
  }
  if (endpoint_key == 0) return;
  if (OutlierDetector* outlier = outlier_for(service)) {
    const std::size_t total =
        hooks_.endpoint_total ? hooks_.endpoint_total(service) : 0;
    if (outlier->on_result(endpoint_key, error, total)) {
      eject(service, endpoint_key);
    }
  }
}

void ResilienceChain::eject(net::ServiceId service, std::uint64_t key) {
  ++ejections_total_;
  ++ejections_by_service_[service];
  if (hooks_.set_endpoint_health) {
    hooks_.set_endpoint_health(service, key, false);
  }
  const sim::Duration hold = config_.outlier->base_ejection_time;
  hooks_.loop->post(hold, [this, service, key]() {
    OutlierDetector* outlier = outlier_for(service);
    if (outlier == nullptr || !outlier->readmit(key)) return;
    ++readmissions_total_;
    ++readmissions_by_service_[service];
    if (hooks_.set_endpoint_health) {
      hooks_.set_endpoint_health(service, key, true);
    }
  });
}

std::uint64_t ResilienceChain::disturbance_epoch(
    net::ServiceId service) const {
  std::uint64_t epoch = 0;
  if (const CircuitBreaker* b = breaker(service)) epoch += b->transitions();
  if (const OutlierDetector* o = outlier(service)) epoch += o->transitions();
  return epoch;
}

bool ResilienceChain::disturbed(net::ServiceId service) const {
  if (const CircuitBreaker* b = breaker(service)) {
    if (b->state(hooks_.loop->now()) != CircuitBreaker::State::kClosed) {
      return true;
    }
  }
  if (const OutlierDetector* o = outlier(service)) {
    if (o->ejected_count() > 0) return true;
  }
  return false;
}

void ResilienceChain::publish_metrics(
    telemetry::MetricsRegistry& registry) const {
  for (const auto& [tenant, count] : rate_limited_by_tenant_) {
    registry
        .counter("resilience_rate_limited_total",
                 {{std::string(telemetry::kTenantLabel),
                   std::to_string(net::id_value(tenant))}})
        .inc(static_cast<double>(count));
  }
  for (const auto& [service, breaker] : breakers_) {
    const telemetry::MetricsRegistry::Labels labels{
        {std::string(telemetry::kServiceLabel),
         std::to_string(net::id_value(service))}};
    registry.counter("resilience_breaker_rejected_total", labels)
        .inc(static_cast<double>(breaker.rejected()));
    registry.counter("resilience_breaker_opens_total", labels)
        .inc(static_cast<double>(breaker.opens()));
  }
  for (const auto& [service, count] : ejections_by_service_) {
    registry
        .counter("resilience_ejections_total",
                 {{std::string(telemetry::kServiceLabel),
                   std::to_string(net::id_value(service))}})
        .inc(static_cast<double>(count));
  }
  for (const auto& [service, count] : readmissions_by_service_) {
    registry
        .counter("resilience_readmissions_total",
                 {{std::string(telemetry::kServiceLabel),
                   std::to_string(net::id_value(service))}})
        .inc(static_cast<double>(count));
  }
}

}  // namespace canal::proxy
