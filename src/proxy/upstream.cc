#include "proxy/upstream.h"

#include <algorithm>
#include <limits>

namespace canal::proxy {

UpstreamEndpoint& UpstreamCluster::add_endpoint(net::Endpoint address,
                                                std::uint64_t key,
                                                std::uint32_t weight) {
  if (version_hook_ != nullptr) ++*version_hook_;
  endpoints_.push_back(std::make_unique<UpstreamEndpoint>(
      UpstreamEndpoint{address, key, weight, true, 0}));
  return *endpoints_.back();
}

bool UpstreamCluster::remove_endpoint(std::uint64_t key) {
  const auto it = std::find_if(endpoints_.begin(), endpoints_.end(),
                               [&](const auto& e) { return e->key == key; });
  if (it == endpoints_.end()) return false;
  if (version_hook_ != nullptr) ++*version_hook_;
  const auto index = static_cast<std::size_t>(it - endpoints_.begin());
  endpoints_.erase(it);
  // Keep the round-robin cursor pointing at the same next endpoint.
  if (rr_cursor_ > index) --rr_cursor_;
  if (rr_cursor_ >= endpoints_.size()) rr_cursor_ = 0;
  return true;
}

bool UpstreamCluster::set_endpoint_health(std::uint64_t key, bool healthy) {
  UpstreamEndpoint* endpoint = find_endpoint(key);
  if (endpoint == nullptr || endpoint->healthy == healthy) return false;
  endpoint->healthy = healthy;
  if (version_hook_ != nullptr) ++*version_hook_;
  return true;
}

UpstreamEndpoint* UpstreamCluster::find_endpoint(std::uint64_t key) {
  for (auto& e : endpoints_) {
    if (e->key == key) return e.get();
  }
  return nullptr;
}

std::size_t UpstreamCluster::healthy_count() const {
  return static_cast<std::size_t>(
      std::count_if(endpoints_.begin(), endpoints_.end(),
                    [](const auto& e) { return e->healthy; }));
}

UpstreamEndpoint* UpstreamCluster::pick(sim::Rng& rng) {
  if (endpoints_.empty()) return nullptr;
  switch (policy_) {
    case LbPolicy::kRoundRobin: {
      for (std::size_t tries = 0; tries < endpoints_.size(); ++tries) {
        UpstreamEndpoint& e = *endpoints_[rr_cursor_];
        rr_cursor_ = (rr_cursor_ + 1) % endpoints_.size();
        if (e.healthy) return &e;
      }
      return nullptr;
    }
    case LbPolicy::kRandom: {
      // Weighted random over healthy endpoints.
      std::uint64_t total = 0;
      for (const auto& e : endpoints_) {
        if (e->healthy) total += e->weight;
      }
      if (total == 0) return nullptr;
      auto draw = static_cast<std::uint64_t>(rng.uniform() *
                                             static_cast<double>(total));
      for (auto& e : endpoints_) {
        if (!e->healthy) continue;
        if (draw < e->weight) return e.get();
        draw -= e->weight;
      }
      return nullptr;
    }
    case LbPolicy::kLeastRequest: {
      UpstreamEndpoint* best = nullptr;
      std::uint32_t best_load = std::numeric_limits<std::uint32_t>::max();
      for (auto& e : endpoints_) {
        if (e->healthy && e->active_requests < best_load) {
          best_load = e->active_requests;
          best = e.get();
        }
      }
      return best;
    }
  }
  return nullptr;
}

UpstreamCluster& ClusterManager::add_cluster(const std::string& name,
                                             LbPolicy policy) {
  auto& slot = clusters_[name];
  if (!slot) {
    ++version_;
    slot = std::make_unique<UpstreamCluster>(name, policy);
    slot->set_version_hook(&version_);
  }
  return *slot;
}

UpstreamCluster* ClusterManager::find(std::string_view name) {
  const auto it = clusters_.find(name);
  return it == clusters_.end() ? nullptr : it->second.get();
}

void ClusterManager::remove_cluster(const std::string& name) {
  if (clusters_.erase(name) > 0) ++version_;
}

}  // namespace canal::proxy
