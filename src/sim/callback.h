// Move-only callable with inline storage for simulator continuations.
//
// The event loop and CPU cores run millions of one-shot continuations per
// simulated second of a large run; storing each in a std::function costs a
// heap allocation whenever the capture exceeds the library's tiny SBO
// buffer (two pointers on libstdc++). sim::Callback keeps captures up to
// kInlineSize bytes inline in the event record itself and only falls back
// to the heap for oversized or throwing-move callables, so steady-state
// scheduling performs no allocations beyond the event heap's own storage.
//
// Only wall-clock behaviour changes: invocation order, results, and all
// simulated timestamps are unaffected.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace canal::sim {

/// A move-only `void()` callable. Captures up to kInlineSize bytes (with
/// nothrow move) are stored inline; larger callables are heap-allocated.
class Callback {
 public:
  /// Inline capture budget. Sized for the dataplane hot-path lambdas
  /// (shared state pointer + a handful of PODs + a nested completion).
  static constexpr std::size_t kInlineSize = 120;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = heap_ops<D>();
    }
  }

  Callback(Callback&& other) noexcept { take(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static const Ops* inline_ops() noexcept {
    static constexpr Ops ops = {
        [](void* s) { (*static_cast<D*>(s))(); },
        [](void* dst, void* src) noexcept {
          D* from = static_cast<D*>(src);
          ::new (dst) D(std::move(*from));
          from->~D();
        },
        [](void* s) noexcept { static_cast<D*>(s)->~D(); },
    };
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() noexcept {
    static constexpr Ops ops = {
        [](void* s) { (**static_cast<D**>(s))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D*(*static_cast<D**>(src));
        },
        [](void* s) noexcept { delete *static_cast<D**>(s); },
    };
    return &ops;
  }

  void take(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace canal::sim
