// CPU cores as FCFS queueing servers.
//
// A core accepts work items with a service cost; completion time is
// max(now, core-free-time) + cost, so queueing delay and saturation emerge
// naturally. Busy intervals are retained (bounded) so callers can ask for
// utilization over arbitrary trailing windows — the signal Canal's anomaly
// detection and precise scaling operate on.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/ring_deque.h"
#include "sim/time.h"

namespace canal::sim {

/// A single simulated CPU core with an unbounded FCFS run queue.
class CpuCore {
 public:
  /// `history` bounds how far back utilization queries may reach.
  explicit CpuCore(EventLoop& loop, Duration history = 5 * kMinute)
      : loop_(loop), history_(history) {}

  CpuCore(const CpuCore&) = delete;
  CpuCore& operator=(const CpuCore&) = delete;

  /// Enqueues a job costing `cost`; runs `done` (if any) at completion.
  /// Returns the completion time. When `queue_wait` is non-null it receives
  /// the FCFS wait this job spends queued behind earlier work (completion ==
  /// now + *queue_wait + cost) — the split request tracing uses to separate
  /// waiting from working.
  TimePoint execute(Duration cost, Callback done = nullptr,
                    Duration* queue_wait = nullptr);

  /// Completion time `execute(cost)` would return, without enqueueing.
  [[nodiscard]] TimePoint completion_if(Duration cost) const noexcept {
    const TimePoint start = free_at_ > loop_.now() ? free_at_ : loop_.now();
    return start + cost;
  }

  /// Time at which the core next becomes idle.
  [[nodiscard]] TimePoint free_at() const noexcept { return free_at_; }

  /// Outstanding queued work (0 when idle).
  [[nodiscard]] Duration backlog() const noexcept {
    return free_at_ > loop_.now() ? free_at_ - loop_.now() : 0;
  }

  /// Fraction of [t - window, t] the core was (or is committed to be) busy.
  [[nodiscard]] double utilization(Duration window) const;

  /// Total busy time ever committed to this core.
  [[nodiscard]] Duration total_busy() const noexcept { return total_busy_; }

  /// Jobs accepted so far.
  [[nodiscard]] std::uint64_t jobs() const noexcept { return jobs_; }

  /// Busy intervals currently retained for utilization queries. Bounded by
  /// both the `history` window and kMaxIntervals.
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return intervals_.size();
  }

  /// Hard cap on retained busy intervals. Time-based pruning alone cannot
  /// bound memory on an idle-free run whose jobs never coalesce (each job
  /// separated by a gap): every interval stays inside `history`. Beyond the
  /// cap the oldest intervals are dropped, shrinking the effective lookback
  /// window but never distorting utilization over windows the retained
  /// intervals still cover.
  static constexpr std::size_t kMaxIntervals = 1 << 16;

 private:
  struct Interval {
    TimePoint start;
    TimePoint end;
  };
  void prune(TimePoint horizon);

  EventLoop& loop_;
  Duration history_;
  TimePoint free_at_ = 0;
  Duration total_busy_ = 0;
  std::uint64_t jobs_ = 0;
  // Busy intervals plus a parallel prefix-sum column: cum_[i] is the total
  // busy time of every interval ever recorded up through intervals_[i]
  // (including pruned ones, via dropped_cum_), maintained in lockstep with
  // intervals_ (push/pop/coalesce). A utilization query then reduces to two
  // binary searches plus integer subtraction instead of a linear walk over
  // the window — the walk was O(window-population) per query and dominated
  // the gateway's per-request placement scoring. RingDeque keeps the
  // steady-state slide (push_back/pop_front) allocation-free.
  RingDeque<Interval> intervals_;
  RingDeque<Duration> cum_;
  Duration dropped_cum_ = 0;  // cum_ value of the last pruned interval
};

/// A group of cores (a VM or a node). Dispatch is least-loaded by default,
/// or pinned by hash for flow/core affinity.
class CpuSet {
 public:
  CpuSet(EventLoop& loop, std::size_t cores, Duration history = 5 * kMinute);

  [[nodiscard]] std::size_t size() const noexcept { return cores_.size(); }

  CpuCore& core(std::size_t i) { return *cores_.at(i); }
  [[nodiscard]] const CpuCore& core(std::size_t i) const { return *cores_.at(i); }

  /// Runs on the least-loaded core. Returns completion time. `queue_wait`,
  /// when non-null, receives the job's FCFS queueing delay.
  TimePoint execute(Duration cost, Callback done = nullptr,
                    Duration* queue_wait = nullptr);

  /// Runs on core `hash % size()` (flow pinning). Returns completion time.
  TimePoint execute_pinned(std::uint64_t hash, Duration cost,
                           Callback done = nullptr,
                           Duration* queue_wait = nullptr);

  /// Index of the core that would next become free.
  [[nodiscard]] std::size_t least_loaded() const;

  /// Mean utilization across cores over the trailing window.
  [[nodiscard]] double utilization(Duration window) const;

  /// Peak single-core utilization over the trailing window.
  [[nodiscard]] double max_core_utilization(Duration window) const;

  /// Sum of busy time across cores, expressed in core-seconds.
  [[nodiscard]] double total_busy_core_seconds() const;

 private:
  std::vector<std::unique_ptr<CpuCore>> cores_;
};

}  // namespace canal::sim
