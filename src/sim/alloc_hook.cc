#include "sim/alloc_hook.h"

#include <cstdlib>
#include <new>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#include <unistd.h>
#define CANAL_ALLOC_HOOK_HAS_BACKTRACE 1
#endif
#endif

namespace {

// Zero-initialized TLS: safe to touch from operator new at any point in
// the program's lifetime (no dynamic initializer to race with).
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_deallocs = 0;
thread_local std::uint64_t t_trap_remaining = 0;

void maybe_backtrace() noexcept {
#if defined(CANAL_ALLOC_HOOK_HAS_BACKTRACE)
  if (t_trap_remaining == 0) return;
  --t_trap_remaining;
  // backtrace() itself may allocate (lazy libgcc init); the guard above is
  // already decremented, so recursion terminates.
  void* frames[32];
  const int depth = backtrace(frames, 32);
  backtrace_symbols_fd(frames, depth, 2);
  static const char kSep[] = "---- alloc ----\n";
  (void)!::write(2, kSep, sizeof(kSep) - 1);
#endif
}

void* counted_alloc(std::size_t size) noexcept {
  ++t_allocs;
  maybe_backtrace();
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  ++t_allocs;
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) {
    return nullptr;
  }
  return p;
}

void counted_free(void* p) noexcept {
  ++t_deallocs;
  std::free(p);
}

}  // namespace

namespace canal::sim {

std::uint64_t alloc_count() noexcept { return t_allocs; }
std::uint64_t dealloc_count() noexcept { return t_deallocs; }

void alloc_backtrace_arm(std::uint64_t n) noexcept {
#if defined(CANAL_ALLOC_HOOK_HAS_BACKTRACE)
  // Symbol tables load lazily inside the first backtrace_symbols_fd call
  // (which allocates); take that hit now so armed traces stay clean.
  void* frames[2];
  backtrace(frames, 2);
#endif
  t_trap_remaining = n;
}

}  // namespace canal::sim

// Replaceable global allocation functions ([new.delete]). malloc-backed so
// sanitizer interceptors still see every allocation; the only addition is
// the thread-local count.
void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(p);
}
