// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** seeded through SplitMix64: fast, high-quality, and fully
// reproducible from a single 64-bit seed so every experiment can be rerun
// bit-exactly.
#pragma once

#include <array>
#include <cstdint>

namespace canal::sim {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Normally distributed value (Box–Muller).
  double normal(double mean, double stddev) noexcept;

  /// Poisson-distributed count with the given mean (Knuth / normal approx).
  std::int64_t poisson(double mean) noexcept;

  /// Log-normally distributed value parameterized by the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  /// True with probability p.
  bool chance(double p) noexcept;

  /// Forks an independent, deterministically derived generator.
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace canal::sim
