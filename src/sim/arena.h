// Per-run memory: a chunked bump allocator and a capacity-retaining object
// pool.
//
// Both exist for the same reason: the steady-state request path must never
// touch the global heap (DESIGN.md §14). An Arena hands out raw bytes by
// bumping a cursor and tears a whole run's worth of allocations down in
// O(chunks); a Pool<T> recycles fully-constructed objects so their owned
// buffers (strings, vectors) keep their capacity across reuse and the
// second acquisition of a slot allocates nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace canal::sim {

/// Chunked bump allocator. allocate() is a pointer bump in the common case;
/// reset() rewinds every chunk cursor without freeing, so a run can be torn
/// down and the next one started with zero allocator traffic. Destructors
/// are never run — create<T>() therefore requires trivially-destructible
/// types; anything owning heap memory belongs in a Pool instead.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Oversized requests get a dedicated chunk and never split a hot one.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const std::size_t aligned = aligned_offset(chunk, align);
      if (aligned + bytes <= chunk.size) {
        chunk.used = aligned + bytes;
        bytes_allocated_ += bytes;
        return chunk.data.get() + aligned;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Bump-allocates and constructs a T. The arena never runs destructors,
  /// so T must not own resources.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors; pool non-trivial types");
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Rewinds every chunk to empty without releasing memory: O(chunks), not
  /// O(allocations). All pointers handed out so far become invalid.
  void reset() noexcept {
    for (Chunk& chunk : chunks_) chunk.used = 0;
    current_ = 0;
    bytes_allocated_ = 0;
  }

  /// Total bytes handed out since construction or the last reset().
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return bytes_allocated_;
  }

  /// Backing chunks currently owned (retained across reset()).
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

  /// Total backing storage owned, allocated or not.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t align_up(std::size_t n,
                                        std::size_t align) noexcept {
    return (n + align - 1) & ~(align - 1);
  }

  /// First in-chunk offset at or after `used` whose *address* (not offset)
  /// is `align`-aligned — chunk bases only guarantee operator new[]'s
  /// alignment, so requests above that must pad off the base address.
  static std::size_t aligned_offset(const Chunk& chunk,
                                    std::size_t align) noexcept {
    const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    return static_cast<std::size_t>(
        align_up(base + chunk.used, align) - base);
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Advance to the next retained chunk that fits, or mint a new one
    // (padded by `align` so any alignment fits off the fresh base).
    for (std::size_t next = current_ + 1; next < chunks_.size(); ++next) {
      Chunk& chunk = chunks_[next];
      const std::size_t aligned = aligned_offset(chunk, align);
      if (aligned + bytes <= chunk.size) {
        current_ = next;
        chunk.used = aligned + bytes;
        bytes_allocated_ += bytes;
        return chunk.data.get() + aligned;
      }
    }
    const std::size_t size =
        bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
    chunks_.push_back(
        Chunk{std::unique_ptr<std::byte[]>(new std::byte[size]), size, 0});
    current_ = chunks_.size() - 1;
    Chunk& chunk = chunks_.back();
    const std::size_t aligned = aligned_offset(chunk, align);
    chunk.used = aligned + bytes;
    bytes_allocated_ += bytes;
    return chunk.data.get() + aligned;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t bytes_allocated_ = 0;
};

/// Capacity-retaining object pool. acquire() reuses a released slot without
/// destroying or re-constructing it, so members like std::string keep the
/// capacity they grew on earlier uses — after warm-up the acquire/release
/// cycle performs zero heap allocations. release() is optional: slots that
/// are never returned (e.g. a request dropped mid-flight) are still owned
/// by the pool and freed at teardown, so leaks are bounded by peak
/// concurrency, never unbounded.
template <typename T>
class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Returns a slot, reusing a released one when available. The slot keeps
  /// whatever state its previous user left; callers reset the fields they
  /// care about (cheaper than destruct + construct, and what preserves
  /// buffer capacity).
  T* acquire() {
    if (!free_.empty()) {
      T* slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.push_back(std::make_unique<T>());
    return slots_.back().get();
  }

  /// Returns `slot` to the free list. Must have come from acquire().
  void release(T* slot) { free_.push_back(slot); }

  /// Slots ever created (high-water mark of concurrent use).
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Slots currently acquired and not yet released.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return slots_.size() - free_.size();
  }

  /// Pre-creates slots (and free-list capacity) so the first `n` concurrent
  /// acquisitions allocate nothing.
  void reserve(std::size_t n) {
    free_.reserve(n > free_.capacity() ? n : free_.capacity());
    while (slots_.size() < n) {
      slots_.push_back(std::make_unique<T>());
      free_.push_back(slots_.back().get());
    }
  }

 private:
  std::vector<std::unique_ptr<T>> slots_;
  std::vector<T*> free_;
};

}  // namespace canal::sim
