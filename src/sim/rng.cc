#include "sim/rng.h"

#include <cmath>

namespace canal::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(kTwoPi * u2);
}

std::int64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation for large means.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform();
  std::int64_t n = 0;
  while (prod > limit) {
    prod *= uniform();
    ++n;
  }
  return n;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept { return Rng(next()); }

}  // namespace canal::sim
