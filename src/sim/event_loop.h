// Discrete-event simulation core.
//
// A binary-heap scheduler over (time, sequence) keys. Ties are broken by
// insertion order so runs are deterministic. Events are arbitrary callables;
// higher-level components (CPU cores, links, timers) are built on top.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace canal::sim {

/// Handle used to cancel a scheduled event. Cancelling is O(1); the event
/// stays in the heap but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call repeatedly or on a
  /// default-constructed handle.
  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// The simulation event loop. Single-threaded and deterministic.
class EventLoop {
 public:
  using Callback = sim::Callback;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `cb` to run at absolute time `when` (clamped to now()).
  EventHandle schedule_at(TimePoint when, Callback cb);

  /// schedule_at reusing a caller-owned liveness flag. Repeating timers
  /// allocate their flag once and re-arm with it forever instead of paying
  /// one shared_ptr control block per tick. The flag is set true here; the
  /// loop sets it false when the event fires (or cancel() does).
  EventHandle schedule_at(TimePoint when, Callback cb,
                          const std::shared_ptr<bool>& alive);

  /// Schedules `cb` to run `delay` after now().
  EventHandle schedule(Duration delay, Callback cb) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  /// Fire-and-forget variant of schedule_at: no cancellation handle, so no
  /// per-event liveness allocation. Use on hot paths that never cancel.
  void post_at(TimePoint when, Callback cb);

  /// Fire-and-forget variant of schedule().
  void post(Duration delay, Callback cb) {
    post_at(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  /// Runs events until the queue empties. Returns the number of events run.
  std::size_t run();

  /// Runs events with time <= `deadline`, then advances now() to `deadline`.
  std::size_t run_until(TimePoint deadline);

  /// Runs events for `span` of simulated time from now().
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  /// Number of pending (possibly cancelled) events.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return heap_.size() + (bucket_.size() - bucket_cursor_);
  }

  /// Earliest pending event time, or std::nullopt when the queue is empty.
  /// Cancelled events still count (they are skipped only when popped), so
  /// the value is a lower bound on the next *effective* event — which is
  /// exactly what a conservative shard scheduler needs (see shard.h).
  [[nodiscard]] std::optional<TimePoint> next_event_time() const noexcept {
    if (bucket_cursor_ < bucket_.size()) return now_;  // runs at exactly now_
    if (!heap_.empty()) return heap_.front().when;
    return std::nullopt;
  }

 private:
  // The heap sifts small (when, seq, slot) keys; the callback payloads
  // (~10x larger, with inline capture storage) sit in a stable slab indexed
  // by `slot` and are never moved by heap operations. Slots are recycled
  // through a free list, so steady-state scheduling touches no allocator.
  // Ordering is identical to a direct heap of events: (when, seq) keys are
  // unique and insertion-ordered, so simulated behaviour is unchanged.
  //
  // Same-timestamp batching: an event scheduled for `now_` while the loop
  // stands at `now_` skips the heap entirely and is appended to `bucket_`,
  // a FIFO drained before time advances. This is order-exact: while now_
  // == T no event with when == T can enter the heap (it lands in the
  // bucket), so every T-keyed heap entry predates — and has a smaller seq
  // than — every bucket entry, and draining heap-T-entries first, then the
  // bucket in append order, replays the exact (when, seq) order a pure
  // heap would have produced. The win is skipping two O(log n) sifts per
  // same-tick event — the dominant class once request fan-out chains post
  // zero-delay continuations.
  struct Event {
    Callback cb;
    std::shared_ptr<bool> alive;
  };
  struct HeapKey {
    TimePoint when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };
  struct Later {
    bool operator()(const HeapKey& a, const HeapKey& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot(Callback cb, std::shared_ptr<bool> alive);
  void enqueue(TimePoint when, std::uint32_t slot);
  bool pop_and_run();
  bool run_bucket_front();

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<HeapKey> heap_;
  std::vector<HeapKey> bucket_;      // FIFO of events at exactly now_
  std::size_t bucket_cursor_ = 0;    // next bucket entry to run
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
};

/// Repeating timer built on EventLoop. Fires `period` apart until stopped.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop& loop, Duration period, std::function<void()> tick)
      : loop_(loop), period_(period), tick_(std::move(tick)) {}
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Schedules the first tick `initial_delay` from now.
  void start(Duration initial_delay = 0);

  /// Cancels future ticks.
  void stop() noexcept { handle_.cancel(); }

  [[nodiscard]] bool running() const noexcept { return handle_.pending(); }

 private:
  void arm(Duration delay);

  EventLoop& loop_;
  Duration period_;
  std::function<void()> tick_;
  EventHandle handle_;
  // One liveness flag for the timer's lifetime, re-armed every tick — a
  // periodic timer would otherwise allocate a fresh control block per tick
  // forever (see EventLoop::schedule_at's shared-alive overload).
  std::shared_ptr<bool> alive_;
};

}  // namespace canal::sim
