// RingDeque: a vector-backed circular buffer with deque semantics.
//
// std::deque (libstdc++) allocates and frees 512-byte chunks as its window
// slides, so a steady-state push_back/pop_front pattern — rate-meter
// samples, CPU busy intervals, time-series history — churns the global heap
// roughly every 32–64 entries forever. RingDeque keeps one power-of-two
// buffer and wraps indices instead: after the buffer has grown to the
// window's high-water mark, the same pattern performs zero allocations.
// Popped slots are not destroyed (the next push assigns over them), so
// element types must be default-constructible and assignable — true for
// the small PODs this holds.
#pragma once

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace canal::sim {

template <typename T>
class RingDeque {
 public:
  template <bool Const>
  class Iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = std::conditional_t<Const, const T*, T*>;
    using reference = std::conditional_t<Const, const T&, T&>;

    Iterator() = default;

    reference operator*() const { return (*deque_)[index_]; }
    pointer operator->() const { return &(*deque_)[index_]; }
    reference operator[](difference_type n) const {
      return (*deque_)[index_ + static_cast<std::size_t>(n)];
    }

    Iterator& operator++() { ++index_; return *this; }
    Iterator operator++(int) { Iterator t = *this; ++index_; return t; }
    Iterator& operator--() { --index_; return *this; }
    Iterator operator--(int) { Iterator t = *this; --index_; return t; }
    Iterator& operator+=(difference_type n) {
      index_ = static_cast<std::size_t>(
          static_cast<difference_type>(index_) + n);
      return *this;
    }
    Iterator& operator-=(difference_type n) { return *this += -n; }
    friend Iterator operator+(Iterator it, difference_type n) {
      it += n;
      return it;
    }
    friend Iterator operator+(difference_type n, Iterator it) {
      it += n;
      return it;
    }
    friend Iterator operator-(Iterator it, difference_type n) {
      it -= n;
      return it;
    }
    friend difference_type operator-(const Iterator& a, const Iterator& b) {
      return static_cast<difference_type>(a.index_) -
             static_cast<difference_type>(b.index_);
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.index_ != b.index_;
    }
    friend bool operator<(const Iterator& a, const Iterator& b) {
      return a.index_ < b.index_;
    }
    friend bool operator>(const Iterator& a, const Iterator& b) {
      return a.index_ > b.index_;
    }
    friend bool operator<=(const Iterator& a, const Iterator& b) {
      return a.index_ <= b.index_;
    }
    friend bool operator>=(const Iterator& a, const Iterator& b) {
      return a.index_ >= b.index_;
    }

   private:
    friend class RingDeque;
    using Parent = std::conditional_t<Const, const RingDeque, RingDeque>;
    Iterator(Parent* deque, std::size_t index)
        : deque_(deque), index_(index) {}
    Parent* deque_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;
  using value_type = T;

  RingDeque() = default;

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  T& operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
  const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) & mask_];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[count_ - 1]; }
  const T& back() const { return (*this)[count_ - 1]; }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T{std::forward<Args>(args)...});
  }

  /// The popped slot is assigned over by a later push, never destroyed.
  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void pop_back() { --count_; }

  /// Drops all elements; buffer capacity is retained.
  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void reserve(std::size_t n) {
    while (buf_.size() < n) grow();
  }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, count_); }
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, count_);
  }
  [[nodiscard]] const_iterator cbegin() const { return begin(); }
  [[nodiscard]] const_iterator cend() const { return end(); }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move((*this)[i]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace canal::sim
