// Measurement primitives: histograms, time series, rate meters.
//
// These back both the benchmark harness (percentiles, CDFs) and the Canal
// control plane itself (trend correlation for root-cause analysis, HWHM
// sampling for in-phase service migration).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/ring_deque.h"
#include "sim/time.h"

namespace canal::sim {

/// Sample-retaining histogram with exact percentiles.
///
/// Memory grows with the sample count — use telemetry::HdrHistogram on
/// unbounded hot paths; this class is for exact small-N assertions and
/// offline analysis where every sample matters.
///
/// Order-statistic queries (min/max/percentile/cdf) share one lazily
/// maintained sorted copy of the samples: the first query after a record()
/// sorts once (O(n log n)) and every further query until the next record()
/// reuses it (O(1) lookups). Interleaving record() and percentile() —
/// bench_suite's selfperf scenario measures exactly this pattern — costs
/// one re-sort per record/query transition, not one per query.
class Histogram {
 public:
  void record(double value);
  void clear() noexcept;

  /// Pre-sizes the sample (and sorted-copy) buffers so a bounded
  /// measurement phase can record() without heap traffic.
  void reserve(std::size_t n) {
    samples_.reserve(n);
    sorted_.reserve(n);
  }

  /// Halves the sample set in place, keeping every second sample (oldest
  /// first) and releasing no capacity — the compaction step for callers
  /// that bound retention by deterministic decimation (see
  /// telemetry::ServiceStats::on_latency). Purely positional, so results
  /// stay reproducible across runs.
  void decimate() noexcept;

  /// True when the sorted copy is current (no record() since the last
  /// order-statistic query). Exposed so tests can pin the caching
  /// behaviour documented above.
  [[nodiscard]] bool sorted_cached() const noexcept { return sorted_valid_; }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  /// (value, cumulative fraction) pairs at `points` evenly spaced ranks.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t points = 20) const;

  [[nodiscard]] std::span<const double> samples() const noexcept {
    return samples_;
  }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Timestamped value series with trailing-window reductions.
class TimeSeries {
 public:
  struct Sample {
    TimePoint t;
    double value;
  };

  /// `max_age` bounds retention; 0 keeps everything.
  explicit TimeSeries(Duration max_age = 0) : max_age_(max_age) {}

  void record(TimePoint t, double value);
  void clear() noexcept { samples_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const RingDeque<Sample>& samples() const noexcept {
    return samples_;
  }

  [[nodiscard]] double sum_in(TimePoint lo, TimePoint hi) const;
  [[nodiscard]] double mean_in(TimePoint lo, TimePoint hi) const;
  [[nodiscard]] double max_in(TimePoint lo, TimePoint hi) const;
  [[nodiscard]] std::size_t count_in(TimePoint lo, TimePoint hi) const;

  /// Latest value at or before `t`, if any.
  [[nodiscard]] std::optional<double> value_at(TimePoint t) const;

  /// Least-squares slope (value units per second) over [lo, hi].
  [[nodiscard]] double trend_in(TimePoint lo, TimePoint hi) const;

 private:
  void prune(TimePoint now);
  Duration max_age_;
  // RingDeque: the sliding retention window would otherwise churn deque
  // chunk allocations forever in steady state (see ring_deque.h).
  RingDeque<Sample> samples_;
};

/// Events-per-second meter over a sliding window. O(1) amortized per
/// record/rate call (incremental window sum).
class RateMeter {
 public:
  explicit RateMeter(Duration window = kSecond) : window_(window) {}

  void record(TimePoint t, double weight = 1.0);
  [[nodiscard]] double rate(TimePoint now) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  void prune(TimePoint now) const;

  Duration window_;
  mutable RingDeque<std::pair<TimePoint, double>> events_;
  mutable double window_sum_ = 0.0;
  std::uint64_t total_ = 0;
};

/// Pearson correlation of two equal-length vectors; 0 if degenerate.
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b);

/// Half-width-at-half-maximum window of a daily series: the contiguous
/// period around the peak where values stay >= (max+min)/2. Returns
/// [start, end] timestamps. Used by §6.3's migration target selection.
struct HwhmWindow {
  TimePoint start = 0;
  TimePoint end = 0;
  TimePoint peak = 0;
};
[[nodiscard]] HwhmWindow hwhm_window(const TimeSeries& series);

}  // namespace canal::sim
