#include "sim/shard.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <stdexcept>
#include <string>

namespace {

// Per-shard busy time must survive CPU timesharing: with more worker
// threads than cores, a thread's elapsed wall time includes intervals
// where a *different* shard held the core, which would inflate every
// shard's reading and wreck the sum/max speedup bound. Thread CPU time
// counts only cycles this thread actually executed.
double busy_clock_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace canal::sim {

ShardedSim::ShardedSim(std::vector<std::size_t> domain_shard,
                       Duration lookahead)
    : domain_shard_(std::move(domain_shard)), lookahead_(lookahead) {
  if (domain_shard_.empty()) {
    throw std::invalid_argument("ShardedSim: no domains");
  }
  if (lookahead_ <= 0) {
    throw std::invalid_argument(
        "ShardedSim: lookahead must be positive (zero-latency crossings "
        "must stay intra-shard)");
  }
  std::size_t max_shard = 0;
  for (const std::size_t s : domain_shard_) max_shard = std::max(max_shard, s);
  std::vector<bool> seen(max_shard + 1, false);
  for (const std::size_t s : domain_shard_) seen[s] = true;
  for (std::size_t s = 0; s <= max_shard; ++s) {
    if (!seen[s]) {
      throw std::invalid_argument("ShardedSim: shard " + std::to_string(s) +
                                  " hosts no domain (indices must be dense)");
    }
  }
  shards_.reserve(max_shard + 1);
  for (std::size_t s = 0; s <= max_shard; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  domain_seq_.assign(domain_shard_.size(), 0);
}

void ShardedSim::send(std::size_t src_domain, std::size_t dst_domain,
                      Duration latency, Callback cb) {
  if (src_domain == dst_domain) {
    throw std::invalid_argument(
        "ShardedSim::send: src == dst (schedule on the domain loop instead)");
  }
  if (latency < lookahead_) {
    throw std::invalid_argument(
        "ShardedSim::send: latency " + std::to_string(latency) +
        " < lookahead " + std::to_string(lookahead_) +
        " breaks the conservative window");
  }
  Shard& src = *shards_.at(domain_shard_.at(src_domain));
  domain_shard_.at(dst_domain);  // range-check dst before parking the message
  Message* msg = src.message_pool.acquire();
  msg->arrival = src.loop.now() + latency;
  msg->src_domain = static_cast<std::uint32_t>(src_domain);
  msg->dst_domain = static_cast<std::uint32_t>(dst_domain);
  msg->seq = domain_seq_[src_domain]++;
  msg->cb = std::move(cb);
  src.outbox.push_back(msg);
}

std::uint64_t ShardedSim::deliver_mailboxes() {
  delivery_scratch_.clear();
  for (const auto& shard : shards_) {
    delivery_scratch_.insert(delivery_scratch_.end(), shard->outbox.begin(),
                             shard->outbox.end());
    shard->outbox.clear();
  }
  if (delivery_scratch_.empty()) return 0;
  // Canonical delivery order: (arrival, src_domain, seq) is a total order
  // (seq is unique per source), so the sort result — and with it the
  // insertion order, hence the tie-break sequence numbers each message
  // receives in its destination loop — is partitioning-independent.
  std::sort(delivery_scratch_.begin(), delivery_scratch_.end(),
            [](const Message* a, const Message* b) noexcept {
              if (a->arrival != b->arrival) return a->arrival < b->arrival;
              if (a->src_domain != b->src_domain)
                return a->src_domain < b->src_domain;
              return a->seq < b->seq;
            });
  for (Message* msg : delivery_scratch_) {
    Shard& dst = *shards_[domain_shard_[msg->dst_domain]];
    dst.loop.post_at(msg->arrival, std::move(msg->cb));
    shards_[domain_shard_[msg->src_domain]]->message_pool.release(msg);
  }
  const auto delivered = static_cast<std::uint64_t>(delivery_scratch_.size());
  delivery_scratch_.clear();
  return delivered;
}

ShardedSim::Stats ShardedSim::run(ShardRunner* runner) {
  SerialShardRunner serial;
  if (runner == nullptr) runner = &serial;

  for (const auto& shard : shards_) {
    shard->events = 0;
    shard->busy_ms = 0.0;
  }

  Stats stats;
  // One task per shard, built once and reused every round; the per-round
  // window end is threaded through by reference so rounds allocate nothing.
  TimePoint window_end = 0;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    tasks.emplace_back([shard, &window_end] {
      const double start_ms = busy_clock_ms();
      // run_until is deadline-inclusive; the window is [start, end), so run
      // strictly below the barrier and park the loop's clock just under it.
      shard->events += shard->loop.run_until(window_end - 1);
      shard->busy_ms += busy_clock_ms() - start_ms;
    });
  }

  for (;;) {
    stats.messages += deliver_mailboxes();

    // The next window starts at the global minimum pending-event time — a
    // quantity independent of how domains are partitioned, which is what
    // keeps every barrier time (and thus all tie-breaking) shard-invariant.
    bool any = false;
    TimePoint next = 0;
    for (const auto& shard : shards_) {
      if (const auto t = shard->loop.next_event_time()) {
        next = any ? std::min(next, *t) : *t;
        any = true;
      }
    }
    if (!any) break;  // all loops drained and no messages parked

    window_end = next + lookahead_;
    runner->run_round(tasks);
    ++stats.rounds;
  }

  stats.shard_busy_ms.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.events += shard->events;
    stats.shard_busy_ms.push_back(shard->busy_ms);
  }
  return stats;
}

}  // namespace canal::sim
