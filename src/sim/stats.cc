#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace canal::sim {

void Histogram::record(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void Histogram::decimate() noexcept {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < samples_.size(); i += 2) {
    samples_[keep++] = samples_[i];
  }
  samples_.resize(keep);
  sorted_valid_ = false;
}

void Histogram::clear() noexcept {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Histogram::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Histogram::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Histogram::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(sorted_.size() - 1) + 0.5);
    out.emplace_back(sorted_[std::min(idx, sorted_.size() - 1)], frac);
  }
  return out;
}

void TimeSeries::record(TimePoint t, double value) {
  samples_.push_back({t, value});
  prune(t);
}

void TimeSeries::prune(TimePoint now) {
  if (max_age_ <= 0) return;
  while (!samples_.empty() && samples_.front().t < now - max_age_) {
    samples_.pop_front();
  }
}

double TimeSeries::sum_in(TimePoint lo, TimePoint hi) const {
  double sum = 0.0;
  for (const auto& s : samples_) {
    if (s.t >= lo && s.t <= hi) sum += s.value;
  }
  return sum;
}

double TimeSeries::mean_in(TimePoint lo, TimePoint hi) const {
  const std::size_t n = count_in(lo, hi);
  return n == 0 ? 0.0 : sum_in(lo, hi) / static_cast<double>(n);
}

double TimeSeries::max_in(TimePoint lo, TimePoint hi) const {
  double best = 0.0;
  bool any = false;
  for (const auto& s : samples_) {
    if (s.t >= lo && s.t <= hi) {
      best = any ? std::max(best, s.value) : s.value;
      any = true;
    }
  }
  return best;
}

std::size_t TimeSeries::count_in(TimePoint lo, TimePoint hi) const {
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.t >= lo && s.t <= hi) ++n;
  }
  return n;
}

std::optional<double> TimeSeries::value_at(TimePoint t) const {
  std::optional<double> out;
  for (const auto& s : samples_) {
    if (s.t <= t) out = s.value;
    else break;
  }
  return out;
}

double TimeSeries::trend_in(TimePoint lo, TimePoint hi) const {
  // Least squares slope of value vs time (seconds).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.t < lo || s.t > hi) continue;
    const double x = to_seconds(s.t - lo);
    sx += x;
    sy += s.value;
    sxx += x * x;
    sxy += x * s.value;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

void RateMeter::prune(TimePoint now) const {
  while (!events_.empty() && events_.front().first < now - window_) {
    window_sum_ -= events_.front().second;
    events_.pop_front();
  }
  if (events_.empty()) window_sum_ = 0.0;  // cancel float drift
}

void RateMeter::record(TimePoint t, double weight) {
  events_.emplace_back(t, weight);
  window_sum_ += weight;
  ++total_;
  prune(t);
}

double RateMeter::rate(TimePoint now) const {
  prune(now);
  return window_sum_ / to_seconds(window_);
}

double pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

HwhmWindow hwhm_window(const TimeSeries& series) {
  HwhmWindow out;
  const auto& samples = series.samples();
  if (samples.empty()) return out;
  double lo = samples.front().value;
  double hi = samples.front().value;
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].value > hi) {
      hi = samples[i].value;
      peak_idx = i;
    }
    lo = std::min(lo, samples[i].value);
  }
  const double half = lo + (hi - lo) / 2.0;
  std::size_t start = peak_idx;
  while (start > 0 && samples[start - 1].value >= half) --start;
  std::size_t end = peak_idx;
  while (end + 1 < samples.size() && samples[end + 1].value >= half) ++end;
  out.start = samples[start].t;
  out.end = samples[end].t;
  out.peak = samples[peak_idx].t;
  return out;
}

}  // namespace canal::sim
