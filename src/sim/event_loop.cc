#include "sim/event_loop.h"

#include <algorithm>
#include <utility>

namespace canal::sim {

std::uint32_t EventLoop::acquire_slot(Callback cb,
                                      std::shared_ptr<bool> alive) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot].cb = std::move(cb);
    slab_[slot].alive = std::move(alive);
    return slot;
  }
  slab_.push_back(Event{std::move(cb), std::move(alive)});
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

EventHandle EventLoop::schedule_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  heap_.push_back(HeapKey{when, next_seq_++, acquire_slot(std::move(cb), alive)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(std::move(alive));
}

void EventLoop::post_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  heap_.push_back(HeapKey{when, next_seq_++, acquire_slot(std::move(cb), nullptr)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventLoop::pop_and_run() {
  const HeapKey key = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  now_ = key.when;
  // Move the payload out and recycle the slot before invoking: the callback
  // may schedule new events, which can reuse this slot or grow the slab.
  Event& ev = slab_[key.slot];
  Callback cb = std::move(ev.cb);
  std::shared_ptr<bool> alive = std::move(ev.alive);
  free_slots_.push_back(key.slot);
  if (alive == nullptr) {  // fire-and-forget: cannot be cancelled
    cb();
    return true;
  }
  if (*alive) {
    *alive = false;
    cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t count = 0;
  while (!heap_.empty()) {
    if (pop_and_run()) ++count;
  }
  return count;
}

std::size_t EventLoop::run_until(TimePoint deadline) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.front().when <= deadline) {
    if (pop_and_run()) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

void PeriodicTimer::start(Duration initial_delay) {
  stop();
  arm(initial_delay);
}

void PeriodicTimer::arm(Duration delay) {
  handle_ = loop_.schedule(delay, [this] {
    tick_();
    arm(period_);
  });
}

}  // namespace canal::sim
