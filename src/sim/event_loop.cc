#include "sim/event_loop.h"

#include <utility>

namespace canal::sim {

EventHandle EventLoop::schedule_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(cb), alive});
  return EventHandle(std::move(alive));
}

bool EventLoop::pop_and_run() {
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  if (*ev.alive) {
    *ev.alive = false;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    if (pop_and_run()) ++count;
  }
  return count;
}

std::size_t EventLoop::run_until(TimePoint deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (pop_and_run()) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

void PeriodicTimer::start(Duration initial_delay) {
  stop();
  arm(initial_delay);
}

void PeriodicTimer::arm(Duration delay) {
  handle_ = loop_.schedule(delay, [this] {
    tick_();
    arm(period_);
  });
}

}  // namespace canal::sim
