#include "sim/event_loop.h"

#include <algorithm>
#include <utility>

namespace canal::sim {

std::uint32_t EventLoop::acquire_slot(Callback cb,
                                      std::shared_ptr<bool> alive) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot].cb = std::move(cb);
    slab_[slot].alive = std::move(alive);
    return slot;
  }
  slab_.push_back(Event{std::move(cb), std::move(alive)});
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventLoop::enqueue(TimePoint when, std::uint32_t slot) {
  if (when == now_) {
    // Same-tick event: FIFO bucket, no heap sift. seq still drawn from the
    // global counter so pop order matches a pure heap exactly (see header).
    bucket_.push_back(HeapKey{when, next_seq_++, slot});
    return;
  }
  heap_.push_back(HeapKey{when, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventHandle EventLoop::schedule_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  enqueue(when, acquire_slot(std::move(cb), alive));
  return EventHandle(std::move(alive));
}

EventHandle EventLoop::schedule_at(TimePoint when, Callback cb,
                                   const std::shared_ptr<bool>& alive) {
  if (when < now_) when = now_;
  *alive = true;
  enqueue(when, acquire_slot(std::move(cb), alive));
  return EventHandle(alive);
}

void EventLoop::post_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  enqueue(when, acquire_slot(std::move(cb), nullptr));
}

bool EventLoop::pop_and_run() {
  const HeapKey key = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  now_ = key.when;
  // Move the payload out and recycle the slot before invoking: the callback
  // may schedule new events, which can reuse this slot or grow the slab.
  Event& ev = slab_[key.slot];
  Callback cb = std::move(ev.cb);
  std::shared_ptr<bool> alive = std::move(ev.alive);
  free_slots_.push_back(key.slot);
  if (alive == nullptr) {  // fire-and-forget: cannot be cancelled
    cb();
    return true;
  }
  if (*alive) {
    *alive = false;
    cb();
    return true;
  }
  return false;
}

bool EventLoop::run_bucket_front() {
  const HeapKey key = bucket_[bucket_cursor_++];
  Event& ev = slab_[key.slot];
  Callback cb = std::move(ev.cb);
  std::shared_ptr<bool> alive = std::move(ev.alive);
  free_slots_.push_back(key.slot);
  if (alive == nullptr) {
    cb();
    return true;
  }
  if (*alive) {
    *alive = false;
    cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t count = 0;
  for (;;) {
    // Heap entries keyed at now_ predate every bucket entry (smaller seq;
    // see header), so they drain first.
    if (!heap_.empty() && heap_.front().when <= now_) {
      if (pop_and_run()) ++count;
      continue;
    }
    if (bucket_cursor_ < bucket_.size()) {
      if (run_bucket_front()) ++count;
      continue;
    }
    if (bucket_cursor_ != 0) {
      bucket_.clear();
      bucket_cursor_ = 0;
    }
    if (heap_.empty()) break;
    if (pop_and_run()) ++count;  // advances now_
  }
  return count;
}

std::size_t EventLoop::run_until(TimePoint deadline) {
  std::size_t count = 0;
  for (;;) {
    if (!heap_.empty() && heap_.front().when <= now_) {
      if (pop_and_run()) ++count;
      continue;
    }
    if (bucket_cursor_ < bucket_.size()) {
      if (now_ > deadline) break;  // bucket entries run at exactly now_
      if (run_bucket_front()) ++count;
      continue;
    }
    if (bucket_cursor_ != 0) {
      bucket_.clear();
      bucket_cursor_ = 0;
    }
    if (heap_.empty() || heap_.front().when > deadline) break;
    if (pop_and_run()) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

void PeriodicTimer::start(Duration initial_delay) {
  stop();
  if (alive_ == nullptr) alive_ = std::make_shared<bool>(false);
  arm(initial_delay);
}

void PeriodicTimer::arm(Duration delay) {
  handle_ = loop_.schedule_at(
      loop_.now() + (delay > 0 ? delay : 0),
      [this] {
        tick_();
        arm(period_);
      },
      alive_);
}

}  // namespace canal::sim
