// Flat hot-path containers (DESIGN.md §14).
//
// Three replacements for node-based std:: containers on per-request paths:
//
//  - FlatHashMap: open-addressing hash table — one contiguous slot array,
//    linear probing, tombstoned erase. Lookups touch one cache line in the
//    common case instead of chasing bucket nodes, and the table performs
//    zero allocations between rehashes. Iteration order is a deterministic
//    function of the insert/erase history (same inputs, same order — the
//    determinism gate holds) but is NOT sorted; use it only where iteration
//    order cannot reach simulated results.
//  - FlatOrderedMap / FlatOrderedSet: sorted vectors with binary-search
//    lookup. Iteration order is exactly std::map/std::set's, so these are
//    drop-in for hot tables whose *iteration* feeds simulated results.
//    Inserts are O(n) — fine for tables built at setup time and read per
//    request. Note: unlike std::map, insertion invalidates references to
//    mapped values; wrap values in unique_ptr where stable addresses are
//    cached (see telemetry::MetricsRegistry).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

namespace canal::sim {

/// Transparent string hash: lets FlatHashMap<std::string, V, StringHash>
/// look keys up by std::string_view without materializing a std::string.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

template <typename Key, typename T, typename Hash = std::hash<Key>,
          typename KeyEqual = std::equal_to<>>
class FlatHashMap {
 public:
  using value_type = std::pair<Key, T>;

  template <bool Const>
  class Iterator {
   public:
    using Parent = std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iterator() = default;

    reference operator*() const { return *map_->slots_[index_]; }
    pointer operator->() const { return &*map_->slots_[index_]; }
    Iterator& operator++() {
      ++index_;
      skip();
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    friend class FlatHashMap;
    Iterator(Parent* map, std::size_t index) : map_(map), index_(index) {
      skip();
    }
    void skip() {
      while (index_ < map_->ctrl_.size() &&
             map_->ctrl_[index_] != kFull) {
        ++index_;
      }
    }
    Parent* map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  FlatHashMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, ctrl_.size()); }
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, ctrl_.size());
  }

  /// Heterogeneous lookup: any K2 the hash/equality accept (e.g. a
  /// string_view against string keys via StringHash).
  template <typename K2>
  iterator find(const K2& key) {
    const std::size_t slot = find_slot(key);
    return slot == kNpos ? end() : iterator(this, slot);
  }
  template <typename K2>
  [[nodiscard]] const_iterator find(const K2& key) const {
    const std::size_t slot = find_slot(key);
    return slot == kNpos ? end() : const_iterator(this, slot);
  }
  template <typename K2>
  [[nodiscard]] bool contains(const K2& key) const {
    return find_slot(key) != kNpos;
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    reserve_for_insert();
    auto [slot, inserted] = insert_slot(key);
    if (inserted) {
      slots_[slot].emplace(key, T(std::forward<Args>(args)...));
    }
    return {iterator(this, slot), inserted};
  }

  std::pair<iterator, bool> insert(value_type value) {
    reserve_for_insert();
    auto [slot, inserted] = insert_slot(value.first);
    if (inserted) slots_[slot].emplace(std::move(value));
    return {iterator(this, slot), inserted};
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  /// Tombstones the slot so probe chains through it stay intact; the slot
  /// is reused by a later insert that probes across it.
  template <typename K2>
  std::size_t erase(const K2& key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNpos) return 0;
    ctrl_[slot] = kTombstone;
    slots_[slot].reset();
    --size_;
    return 1;
  }

  void erase(iterator it) {
    ctrl_[it.index_] = kTombstone;
    slots_[it.index_].reset();
    --size_;
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) slots_[i].reset();
      ctrl_[i] = kEmpty;
    }
    size_ = 0;
    filled_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = ctrl_.size();
    while (cap == 0 || n * 8 >= cap * 7) cap = cap == 0 ? 8 : cap * 2;
    if (cap > ctrl_.size()) rehash(cap);
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return ctrl_.size();
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// splitmix64 finalizer: std::hash for integers is the identity on
  /// libstdc++, which clusters badly under linear probing with the
  /// power-of-two mask. Deterministic, so table layout is reproducible.
  template <typename K2>
  [[nodiscard]] std::size_t mix(const K2& key) const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(hash_(key));
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }

  template <typename K2>
  [[nodiscard]] std::size_t find_slot(const K2& key) const {
    if (ctrl_.empty()) return kNpos;
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = mix(key) & mask;
    for (;;) {
      if (ctrl_[i] == kEmpty) return kNpos;
      if (ctrl_[i] == kFull && eq_(slots_[i]->first, key)) return i;
      i = (i + 1) & mask;
    }
  }

  /// Finds the slot for `key`, reusing the first tombstone crossed when the
  /// key is absent. Caller has ensured capacity. Returns (slot, inserted).
  std::pair<std::size_t, bool> insert_slot(const Key& key) {
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = mix(key) & mask;
    std::size_t tombstone = kNpos;
    for (;;) {
      if (ctrl_[i] == kEmpty) {
        std::size_t target = i;
        if (tombstone != kNpos) {
          target = tombstone;
        } else {
          ++filled_;
        }
        ctrl_[target] = kFull;
        ++size_;
        return {target, true};
      }
      if (ctrl_[i] == kTombstone) {
        if (tombstone == kNpos) tombstone = i;
      } else if (eq_(slots_[i]->first, key)) {
        return {i, false};
      }
      i = (i + 1) & mask;
    }
  }

  void reserve_for_insert() {
    if (ctrl_.empty()) {
      rehash(8);
      return;
    }
    // filled_ counts full + tombstoned slots: both lengthen probe chains,
    // so both count against the 7/8 load ceiling. A table dominated by
    // tombstones rehashes in place (same capacity) to purge them.
    if ((filled_ + 1) * 8 >= ctrl_.size() * 7) {
      const std::size_t cap = (size_ + 1) * 8 >= ctrl_.size() * 7
                                  ? ctrl_.size() * 2
                                  : ctrl_.size();
      rehash(cap);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<std::optional<value_type>> old_slots = std::move(slots_);
    ctrl_.assign(new_cap, kEmpty);
    // resize (not assign): in-place default construction keeps move-only
    // mapped types (unique_ptr values) usable.
    slots_.clear();
    slots_.resize(new_cap);
    size_ = 0;
    filled_ = 0;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      auto [slot, inserted] = insert_slot(old_slots[i]->first);
      slots_[slot] = std::move(old_slots[i]);
      (void)inserted;
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<std::optional<value_type>> slots_;
  std::size_t size_ = 0;
  std::size_t filled_ = 0;  // full + tombstoned
  Hash hash_;
  KeyEqual eq_;
};

/// Sorted-vector map: binary-search lookup, std::map iteration order.
template <typename Key, typename T, typename Compare = std::less<Key>>
class FlatOrderedMap {
 public:
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatOrderedMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  iterator lower_bound(const Key& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            EntryLess{cmp_});
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            EntryLess{cmp_});
  }

  iterator find(const Key& key) {
    auto it = lower_bound(key);
    return it != entries_.end() && !cmp_(key, it->first) ? it
                                                         : entries_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return it != entries_.end() && !cmp_(key, it->first) ? it
                                                         : entries_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != entries_.end();
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    auto it = lower_bound(key);
    if (it != entries_.end() && !cmp_(key, it->first)) return {it, false};
    it = entries_.emplace(it, std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  std::pair<iterator, bool> insert(value_type value) {
    auto it = lower_bound(value.first);
    if (it != entries_.end() && !cmp_(value.first, it->first)) {
      return {it, false};
    }
    it = entries_.insert(it, std::move(value));
    return {it, true};
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return entries_.erase(it); }

  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

 private:
  struct EntryLess {
    Compare cmp;
    bool operator()(const value_type& e, const Key& k) const {
      return cmp(e.first, k);
    }
  };

  std::vector<value_type> entries_;
  Compare cmp_;
};

/// Sorted-vector set: binary-search lookup, std::set iteration order.
template <typename Key, typename Compare = std::less<Key>>
class FlatOrderedSet {
 public:
  using const_iterator = typename std::vector<Key>::const_iterator;

  FlatOrderedSet() = default;

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] const_iterator begin() const { return values_.begin(); }
  [[nodiscard]] const_iterator end() const { return values_.end(); }

  [[nodiscard]] bool contains(const Key& key) const {
    auto it = std::lower_bound(values_.begin(), values_.end(), key, cmp_);
    return it != values_.end() && !cmp_(key, *it);
  }

  std::pair<const_iterator, bool> insert(Key key) {
    auto it = std::lower_bound(values_.begin(), values_.end(), key, cmp_);
    if (it != values_.end() && !cmp_(key, *it)) return {it, false};
    it = values_.insert(it, std::move(key));
    return {it, true};
  }

  std::size_t erase(const Key& key) {
    auto it = std::lower_bound(values_.begin(), values_.end(), key, cmp_);
    if (it == values_.end() || cmp_(key, *it)) return 0;
    values_.erase(it);
    return 1;
  }

  void clear() noexcept { values_.clear(); }
  void reserve(std::size_t n) { values_.reserve(n); }

 private:
  std::vector<Key> values_;
  Compare cmp_;
};

}  // namespace canal::sim
