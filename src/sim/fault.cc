#include "sim/fault.h"

#include <algorithm>

namespace canal::sim {

FaultPlan& FaultPlan::crash_pod(TimePoint at, std::uint64_t pod) {
  pod_events_.push_back({at, pod, /*restart=*/false});
  return *this;
}

FaultPlan& FaultPlan::restart_pod(TimePoint at, std::uint64_t pod) {
  pod_events_.push_back({at, pod, /*restart=*/true});
  return *this;
}

FaultPlan& FaultPlan::kill_pod_for(TimePoint at, std::uint64_t pod,
                                   Duration outage) {
  crash_pod(at, pod);
  restart_pod(at + outage, pod);
  return *this;
}

FaultPlan& FaultPlan::link_loss(TimePoint start, TimePoint end, double loss) {
  link_windows_.push_back({start, end, std::clamp(loss, 0.0, 1.0), 0});
  return *this;
}

FaultPlan& FaultPlan::link_latency_spike(TimePoint start, TimePoint end,
                                         Duration extra) {
  link_windows_.push_back({start, end, 0.0, extra});
  return *this;
}

FaultPlan& FaultPlan::crash_gateway_replica(TimePoint at,
                                            std::uint32_t backend,
                                            std::size_t replica_index) {
  gateway_events_.push_back({at, backend, replica_index, /*recover=*/false});
  return *this;
}

FaultPlan& FaultPlan::recover_gateway_replica(TimePoint at,
                                              std::uint32_t backend,
                                              std::size_t replica_index) {
  gateway_events_.push_back({at, backend, replica_index, /*recover=*/true});
  return *this;
}

FaultPlan& FaultPlan::stale_config(TimePoint start, TimePoint end,
                                   Duration delay) {
  config_windows_.push_back({start, end, delay});
  return *this;
}

namespace {
constexpr bool active(TimePoint start, TimePoint end, TimePoint t) noexcept {
  return t >= start && t < end;
}
}  // namespace

double FaultPlan::link_loss_at(TimePoint t) const {
  double loss = 0.0;
  for (const auto& w : link_windows_) {
    if (active(w.start, w.end, t)) loss = std::max(loss, w.loss);
  }
  return loss;
}

Duration FaultPlan::extra_link_latency_at(TimePoint t) const {
  Duration extra = 0;
  for (const auto& w : link_windows_) {
    if (active(w.start, w.end, t)) extra += w.extra_latency;
  }
  return extra;
}

Duration FaultPlan::config_delay_at(TimePoint t) const {
  Duration delay = 0;
  for (const auto& w : config_windows_) {
    if (active(w.start, w.end, t)) delay = std::max(delay, w.delay);
  }
  return delay;
}

}  // namespace canal::sim
