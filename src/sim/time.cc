#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace canal::sim {

std::string format_duration(Duration d) {
  char buf[64];
  const double abs_d = std::abs(static_cast<double>(d));
  if (abs_d >= static_cast<double>(kMinute)) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", to_seconds(d) / 60.0);
  } else if (abs_d >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%.2fs", to_seconds(d));
  } else if (abs_d >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%.2fms", to_milliseconds(d));
  } else if (abs_d >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%.2fus", to_microseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace canal::sim
