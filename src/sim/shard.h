// Partitioned parallel discrete-event simulation (DESIGN.md §15).
//
// A ShardedSim splits a topology into *domains* (one AZ or server group
// each), gives every domain an EventLoop home, and groups domains into
// *shards* that can execute on independent worker threads. Shards
// synchronize conservatively: all loops advance in lockstep windows no
// wider than the minimum cross-domain message latency (the *lookahead*),
// so a message sent during a window can never arrive inside it — it is
// parked in a mailbox and delivered at the next window barrier, always in
// the future of every loop.
//
// Determinism contract — results are byte-identical at any shard count and
// on any number of worker threads, provided scenario code obeys two rules:
//
//   1. Domain isolation: an event callback touches only the state of the
//      domain whose loop runs it. Domains co-located on one shard share a
//      loop (and its tie-break sequence counter), but because their
//      callbacks touch disjoint state, interleaving two domains' events at
//      equal timestamps cannot change either domain's evolution.
//   2. Mailbox-only crossings: all cross-domain communication goes through
//      send(), even between domains that happen to share a shard. send()
//      stamps each message with (arrival time, source domain, per-source
//      sequence number); barriers deliver every parked message sorted by
//      that key. The delivery order into any loop is therefore a pure
//      function of domain-local histories, never of the partitioning.
//
// Window schedule invariance closes the argument: each round starts at the
// global minimum pending-event time (a partitioning-independent quantity)
// and spans exactly one lookahead, so the barrier times — and with them
// the relative tie-break order between locally-scheduled events and
// barrier-delivered messages — are identical at any shard count. The
// engine's own counters (events, rounds, messages) are deterministic and
// committed as golden material.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/arena.h"
#include "sim/callback.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace canal::sim {

/// Executes one barrier round's per-shard tasks. The serial implementation
/// runs them in shard order on the calling thread; runner::PoolShardRunner
/// fans them out over a WorkStealingPool. Implementations must run every
/// task to completion before returning (the return IS the barrier) and
/// must provide a happens-before edge between rounds, so shard state
/// written in round k is visible to whichever thread runs it in round k+1.
class ShardRunner {
 public:
  virtual ~ShardRunner() = default;
  virtual void run_round(std::vector<std::function<void()>>& tasks) = 0;
};

/// In-order, same-thread round execution (the --shards 1 path, and the
/// reference the parallel runner must be indistinguishable from).
class SerialShardRunner final : public ShardRunner {
 public:
  void run_round(std::vector<std::function<void()>>& tasks) override {
    for (auto& task : tasks) task();
  }
};

class ShardedSim {
 public:
  /// Deterministic engine counters; all three are pure functions of the
  /// simulated workload (golden material). Wall-clock readings go under
  /// shard_busy_ms and are machine-dependent ("wall." material only).
  struct Stats {
    std::uint64_t events = 0;    ///< callbacks executed across all loops
    std::uint64_t rounds = 0;    ///< barrier rounds taken
    std::uint64_t messages = 0;  ///< cross-domain messages delivered
    /// Per-shard busy time (thread CPU time, so CPU timesharing between
    /// shard workers cannot inflate it), summed over that shard's window
    /// tasks. sum/max is the parallel speedup bound — the wall-clock
    /// ratio a machine with >= shards free cores converges to.
    std::vector<double> shard_busy_ms;

    [[nodiscard]] double busy_ms_sum() const noexcept {
      double sum = 0.0;
      for (const double ms : shard_busy_ms) sum += ms;
      return sum;
    }
    [[nodiscard]] double busy_ms_max() const noexcept {
      double max = 0.0;
      for (const double ms : shard_busy_ms) max = ms > max ? ms : max;
      return max;
    }
  };

  /// `domain_shard[d]` is the shard hosting domain d. Shard indices must
  /// be dense (0..max). `lookahead` is the conservative window width: no
  /// cross-domain message may travel faster. Throws std::invalid_argument
  /// on an empty mapping, a non-dense shard set, or lookahead <= 0 —
  /// a zero-latency crossing would force zero-width windows (see
  /// k8s::cross_shard_lookahead, which keeps such links intra-shard).
  ShardedSim(std::vector<std::size_t> domain_shard, Duration lookahead);

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  [[nodiscard]] std::size_t domains() const noexcept {
    return domain_shard_.size();
  }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] std::size_t shard_of(std::size_t domain) const {
    return domain_shard_.at(domain);
  }

  /// The loop hosting `domain` (shared with co-located domains).
  [[nodiscard]] EventLoop& domain_loop(std::size_t domain) {
    return shards_.at(domain_shard_.at(domain))->loop;
  }
  [[nodiscard]] EventLoop& shard_loop(std::size_t shard) {
    return shards_.at(shard)->loop;
  }

  /// Schedules `cb` on dst's loop at src's now() + latency. Must be called
  /// from a callback running on src's loop (that thread owns src's shard
  /// outbox during a round). Throws std::invalid_argument when src == dst
  /// (schedule locally instead) or latency < lookahead (the message would
  /// violate the conservative window).
  void send(std::size_t src_domain, std::size_t dst_domain, Duration latency,
            Callback cb);

  /// Runs every loop to completion in conservative windows, delivering
  /// mailboxes at the barriers. `runner` executes each round's per-shard
  /// tasks (null = serial). Reentrant per instance: a second run() resumes
  /// with whatever events remain (normally none).
  Stats run(ShardRunner* runner = nullptr);

 private:
  struct Message {
    TimePoint arrival = 0;
    std::uint32_t src_domain = 0;
    std::uint32_t dst_domain = 0;
    std::uint64_t seq = 0;  ///< per-source-domain counter
    Callback cb;
  };

  struct Shard {
    EventLoop loop;
    /// Outbox and message pool are written only by the thread running
    /// this shard's window task, and drained/refilled only at barriers
    /// (single-threaded coordinator) — never both at once.
    std::vector<Message*> outbox;
    Pool<Message> message_pool;
    std::uint64_t events = 0;
    double busy_ms = 0.0;
  };

  /// Moves every parked message into its destination loop, sorted by
  /// (arrival, src_domain, seq), and recycles the message slots.
  std::uint64_t deliver_mailboxes();

  std::vector<std::size_t> domain_shard_;
  Duration lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-domain send counters: the deterministic tie-break between
  /// messages that share an arrival time and a source.
  std::vector<std::uint64_t> domain_seq_;
  /// Barrier-time scratch for the canonical delivery sort.
  std::vector<Message*> delivery_scratch_;
};

}  // namespace canal::sim
