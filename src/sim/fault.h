// Declarative fault injection for simulations.
//
// A FaultPlan is a schedule of failures expressed purely in simulation
// terms — pod crash/restart instants, per-link loss and latency-spike
// windows, gateway replica crashes, and stale-configuration windows on the
// control plane. The plan itself is inert data: higher layers (the mesh
// NetworkProfile for link faults, canal::core::FaultInjector for pod and
// gateway faults) consult or arm it. Keeping the plan in sim/ lets every
// dataplane share one failure model without sim/ depending on k8s or mesh
// types; object identifiers are carried as raw integers
// (net::id_value(...) of the strong IDs).
//
// Determinism: the plan holds no randomness. Loss decisions are drawn by
// the consumer from its own seeded Rng, so a fixed seed reproduces the
// exact same failure behaviour run after run.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace canal::sim {

/// One scheduled pod lifecycle fault.
struct PodFaultEvent {
  TimePoint at = 0;
  std::uint64_t pod = 0;  ///< net::id_value of the PodId
  bool restart = false;   ///< false = crash (Terminated), true = restart
};

/// While active, every link hop may drop packets and/or run slower.
struct LinkFaultWindow {
  TimePoint start = 0;
  TimePoint end = 0;
  double loss = 0.0;           ///< drop probability per request packet
  Duration extra_latency = 0;  ///< added to each link hop
};

/// One scheduled gateway replica fault (crash or recovery). The replica is
/// addressed by backend id + index so plans can be written before replica
/// IDs exist.
struct GatewayFaultEvent {
  TimePoint at = 0;
  std::uint32_t backend = 0;  ///< net::id_value of the BackendId
  std::size_t replica_index = 0;
  bool recover = false;  ///< false = crash, true = recover
};

/// While active, control-plane notifications (endpoint refreshes after a
/// pod restart) are delivered `delay` late — the stale-config failure mode.
struct ConfigDelayWindow {
  TimePoint start = 0;
  TimePoint end = 0;
  Duration delay = 0;
};

/// A complete, immutable-once-armed failure schedule.
class FaultPlan {
 public:
  // --- builders -------------------------------------------------------
  FaultPlan& crash_pod(TimePoint at, std::uint64_t pod);
  FaultPlan& restart_pod(TimePoint at, std::uint64_t pod);
  /// Crash at `at`, restart `outage` later.
  FaultPlan& kill_pod_for(TimePoint at, std::uint64_t pod, Duration outage);
  FaultPlan& link_loss(TimePoint start, TimePoint end, double loss);
  FaultPlan& link_latency_spike(TimePoint start, TimePoint end,
                                Duration extra);
  FaultPlan& crash_gateway_replica(TimePoint at, std::uint32_t backend,
                                   std::size_t replica_index);
  FaultPlan& recover_gateway_replica(TimePoint at, std::uint32_t backend,
                                     std::size_t replica_index);
  FaultPlan& stale_config(TimePoint start, TimePoint end, Duration delay);

  // --- schedule accessors --------------------------------------------
  [[nodiscard]] const std::vector<PodFaultEvent>& pod_events() const noexcept {
    return pod_events_;
  }
  [[nodiscard]] const std::vector<LinkFaultWindow>& link_windows()
      const noexcept {
    return link_windows_;
  }
  [[nodiscard]] const std::vector<GatewayFaultEvent>& gateway_events()
      const noexcept {
    return gateway_events_;
  }
  [[nodiscard]] const std::vector<ConfigDelayWindow>& config_windows()
      const noexcept {
    return config_windows_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return pod_events_.empty() && link_windows_.empty() &&
           gateway_events_.empty() && config_windows_.empty();
  }

  // --- point-in-time queries (used on the request hot path) -----------
  /// Packet-drop probability at `t` (max over active windows).
  [[nodiscard]] double link_loss_at(TimePoint t) const;
  /// Extra per-hop latency at `t` (sum over active windows).
  [[nodiscard]] Duration extra_link_latency_at(TimePoint t) const;
  /// Control-plane notification delay at `t` (max over active windows).
  [[nodiscard]] Duration config_delay_at(TimePoint t) const;

 private:
  std::vector<PodFaultEvent> pod_events_;
  std::vector<LinkFaultWindow> link_windows_;
  std::vector<GatewayFaultEvent> gateway_events_;
  std::vector<ConfigDelayWindow> config_windows_;
};

}  // namespace canal::sim
