// Pluggable global-heap allocation counter (DESIGN.md §14).
//
// Referencing these functions pulls alloc_hook.cc out of the canal_sim
// archive, which replaces the global operator new/delete family with
// malloc/free wrappers that bump a thread-local counter — the probe behind
// the zero-steady-state-allocation guarantee: selfperf reports the count
// per run, and test_zero_alloc asserts a hard zero across 1k warm canal
// requests. Binaries that never reference them keep the stock allocator
// and pay nothing.
//
// Counters are thread-local: a simulation run executes entirely on one
// worker thread, so a before/after delta isolates that run even when the
// bench suite fans runs out over a pool. The count is a pure function of
// the code path (never of addresses or timing), so it is deterministic and
// golden-safe for a fixed toolchain.
#pragma once

#include <cstdint>

namespace canal::sim {

/// Global operator-new invocations on the calling thread since it started.
[[nodiscard]] std::uint64_t alloc_count() noexcept;

/// Global operator-delete invocations on the calling thread.
[[nodiscard]] std::uint64_t dealloc_count() noexcept;

/// Prints a symbolized backtrace to stderr for the next `n` allocations on
/// the calling thread — the diagnostic companion to the zero-allocation
/// tests: when a steady-state zero regresses, arming this at the start of
/// the measured region names the offending call sites. No-op where
/// <execinfo.h> is unavailable.
void alloc_backtrace_arm(std::uint64_t n) noexcept;

}  // namespace canal::sim
