#include "sim/cpu.h"

#include <algorithm>

namespace canal::sim {

TimePoint CpuCore::execute(Duration cost, Callback done,
                           Duration* queue_wait) {
  if (cost < 0) cost = 0;
  const TimePoint start = std::max(free_at_, loop_.now());
  if (queue_wait != nullptr) *queue_wait = start - loop_.now();
  const TimePoint end = start + cost;
  free_at_ = end;
  total_busy_ += cost;
  ++jobs_;
  if (cost > 0) {
    if (!intervals_.empty() && intervals_.back().end == start) {
      intervals_.back().end = end;  // coalesce back-to-back work
      cum_.back() += cost;
    } else {
      intervals_.push_back({start, end});
      cum_.push_back((cum_.empty() ? dropped_cum_ : cum_.back()) + cost);
    }
    prune(loop_.now() - history_);
  }
  if (done) loop_.post_at(end, std::move(done));
  return end;
}

void CpuCore::prune(TimePoint horizon) {
  while (!intervals_.empty() && intervals_.front().end < horizon) {
    dropped_cum_ = cum_.front();
    intervals_.pop_front();
    cum_.pop_front();
  }
  // Time-based pruning alone cannot bound memory when every retained
  // interval is younger than `history`; enforce the hard cap by dropping
  // the oldest entries.
  while (intervals_.size() > kMaxIntervals) {
    dropped_cum_ = cum_.front();
    intervals_.pop_front();
    cum_.pop_front();
  }
}

double CpuCore::utilization(Duration window) const {
  if (window <= 0) return 0.0;
  const TimePoint hi = loop_.now();
  const TimePoint lo = hi - window;
  // Intervals are appended in nondecreasing (start, end) order and are
  // disjoint, so the window's overlap set is the contiguous index range
  // [first, last): binary-search both ends, then read the busy total out
  // of the prefix-sum column and clip the two boundary intervals — only
  // the first can start before `lo` and only the last can end after `hi`.
  // Pure integer arithmetic, so the result is bit-identical to the old
  // linear accumulation.
  const std::size_t n = intervals_.size();
  std::size_t first = 0;
  for (std::size_t step = n; step > 0; step /= 2) {  // first with end > lo
    while (first + step <= n && intervals_[first + step - 1].end <= lo) {
      first += step;
    }
  }
  std::size_t last = first;
  for (std::size_t step = n; step > 0; step /= 2) {  // first with start >= hi
    while (last + step <= n && intervals_[last + step - 1].start < hi) {
      last += step;
    }
  }
  if (first >= last) return 0.0;
  Duration busy = cum_[last - 1] - (first == 0 ? dropped_cum_ : cum_[first - 1]);
  if (intervals_[first].start < lo) busy -= lo - intervals_[first].start;
  if (intervals_[last - 1].end > hi) busy -= intervals_[last - 1].end - hi;
  return static_cast<double>(busy) / static_cast<double>(window);
}

CpuSet::CpuSet(EventLoop& loop, std::size_t cores, Duration history) {
  cores_.reserve(cores);
  for (std::size_t i = 0; i < cores; ++i) {
    cores_.push_back(std::make_unique<CpuCore>(loop, history));
  }
}

std::size_t CpuSet::least_loaded() const {
  std::size_t best = 0;
  TimePoint best_free = std::numeric_limits<TimePoint>::max();
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i]->free_at() < best_free) {
      best_free = cores_[i]->free_at();
      best = i;
    }
  }
  return best;
}

TimePoint CpuSet::execute(Duration cost, Callback done,
                          Duration* queue_wait) {
  return cores_[least_loaded()]->execute(cost, std::move(done), queue_wait);
}

TimePoint CpuSet::execute_pinned(std::uint64_t hash, Duration cost,
                                 Callback done,
                                 Duration* queue_wait) {
  return cores_[hash % cores_.size()]->execute(cost, std::move(done),
                                               queue_wait);
}

double CpuSet::utilization(Duration window) const {
  if (cores_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& c : cores_) sum += c->utilization(window);
  return sum / static_cast<double>(cores_.size());
}

double CpuSet::max_core_utilization(Duration window) const {
  double best = 0.0;
  for (const auto& c : cores_) best = std::max(best, c->utilization(window));
  return best;
}

double CpuSet::total_busy_core_seconds() const {
  double sum = 0.0;
  for (const auto& c : cores_) sum += to_seconds(c->total_busy());
  return sum;
}

}  // namespace canal::sim
