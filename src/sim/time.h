// Simulated-time primitives.
//
// All simulation time is kept as integer nanoseconds to make event ordering
// exact and runs bit-reproducible across platforms. Helpers convert to and
// from the floating-point units used in reports.
#pragma once

#include <cstdint>
#include <string>

namespace canal::sim {

/// A span of simulated time in nanoseconds.
using Duration = std::int64_t;

/// An absolute simulated time in nanoseconds since simulation start.
using TimePoint = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}
constexpr Duration milliseconds(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
constexpr Duration minutes(double m) {
  return static_cast<Duration>(m * static_cast<double>(kMinute));
}
constexpr Duration hours(double h) {
  return static_cast<Duration>(h * static_cast<double>(kHour));
}

constexpr double to_microseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Renders a duration with an auto-selected unit, e.g. "1.25ms" or "55s".
std::string format_duration(Duration d);

}  // namespace canal::sim
