#include "lb/aggregation.h"

namespace canal::lb {

std::uint32_t SessionAggregator::tunnel_index(
    const net::FiveTuple& inner) const {
  return static_cast<std::uint32_t>(net::flow_hash(inner) %
                                    config_.tunnels_per_replica);
}

net::FiveTuple SessionAggregator::outer_tuple(const net::FiveTuple& inner,
                                              net::Ipv4Addr replica_ip) const {
  net::FiveTuple outer;
  outer.src_ip = config_.router_ip;
  outer.dst_ip = replica_ip;
  outer.src_port =
      static_cast<std::uint16_t>(config_.base_src_port + tunnel_index(inner));
  outer.dst_port = 4789;  // VXLAN
  outer.protocol = net::Protocol::kUdp;
  return outer;
}

void SessionAggregator::encapsulate(net::Packet& packet,
                                    net::Ipv4Addr replica_ip) const {
  net::VxlanHeader header;
  header.outer = outer_tuple(packet.tuple, replica_ip);
  header.vni = config_.vni;
  packet.vxlan = header;
}

bool SessionAggregator::decapsulate(net::Packet& packet) {
  if (!packet.vxlan) return false;
  packet.vxlan.reset();
  return true;
}

void NicSessionCounter::observe(const net::FiveTuple& inner_session,
                                const net::FiveTuple& outer_tunnel) {
  inner_.insert(inner_session);
  outer_.insert(outer_tunnel);
}

}  // namespace canal::lb
