// Session aggregation via VXLAN tunneling (§4.4, Fig 9).
//
// The underlying servers' SmartNICs hold per-session state, so hundreds of
// thousands of mesh sessions exhaust NIC memory long before CPU saturates
// (20% CPU at 90% session occupancy). The aggregator — running at the
// router, line-rate on programmable chips — wraps many inner sessions into
// a few VXLAN tunnels toward each replica; the vSwitch sees only the
// tunnels. Different outer source ports spread the tunnels across the
// replica's cores (≈10 tunnels per core recommended).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "net/packet.h"

namespace canal::lb {

class SessionAggregator {
 public:
  struct Config {
    net::Ipv4Addr router_ip;
    std::uint16_t base_src_port = 40000;
    /// Number of tunnels per replica (recommend ~10x replica core count).
    std::uint32_t tunnels_per_replica = 40;
    std::uint32_t vni = 0;
  };

  explicit SessionAggregator(Config config) : config_(config) {}

  /// Deterministic tunnel index for an inner flow.
  [[nodiscard]] std::uint32_t tunnel_index(const net::FiveTuple& inner) const;

  /// Encapsulates an inner packet toward `replica_ip`. The outer tuple is
  /// the tunnel identity — this is the only session the underlying server
  /// must track.
  void encapsulate(net::Packet& packet, net::Ipv4Addr replica_ip) const;

  /// Strips the tunnel header at the replica-side disaggregator. Returns
  /// false for packets that were not tunnel-encapsulated.
  static bool decapsulate(net::Packet& packet);

  /// Outer 5-tuple for (inner flow, replica) — what the NIC session table
  /// stores after aggregation.
  [[nodiscard]] net::FiveTuple outer_tuple(const net::FiveTuple& inner,
                                           net::Ipv4Addr replica_ip) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Counts distinct NIC-level sessions with and without aggregation —
/// the Table 5 "tunneling" economics input.
class NicSessionCounter {
 public:
  void observe(const net::FiveTuple& inner_session,
               const net::FiveTuple& outer_tunnel);

  [[nodiscard]] std::size_t inner_sessions() const noexcept {
    return inner_.size();
  }
  [[nodiscard]] std::size_t tunnel_sessions() const noexcept {
    return outer_.size();
  }

 private:
  std::unordered_set<net::FiveTuple> inner_;
  std::unordered_set<net::FiveTuple> outer_;
};

}  // namespace canal::lb
