// Beamer-style bucket table for stateless LB with session consistency.
//
// LB disaggregation (§4.4) replaces dedicated LB VMs with (a) the ECMP
// router already in front of the replicas for load distribution and (b) a
// redirector embedded in each replica for session consistency. The bucket
// table is the redirector's state: a fixed number of buckets, each holding
// a priority-ordered replica chain. Canal's modifications over Beamer:
//   (i)  chains longer than 2 to survive multiple scale events in a short
//        period (consecutive query-of-death crashes),
//   (ii) one bucket table per service, indexed by service ID,
//   (iii) an eBPF-accelerated redirector (cost model in the gateway).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/ids.h"

namespace canal::lb {

/// One service's bucket table. All replicas of the service hold identical
/// copies, updated by the centralized controller.
class BucketTable {
 public:
  /// `buckets` is fixed for the table's lifetime so a flow always hashes to
  /// the same bucket; `max_chain` bounds replica-chain length (Canal uses
  /// > 2; Beamer used 2).
  BucketTable(std::size_t buckets, std::size_t max_chain);

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return chains_.size();
  }
  [[nodiscard]] std::size_t max_chain() const noexcept { return max_chain_; }

  /// Bucket index for a flow: hash(5-tuple) mod #buckets.
  [[nodiscard]] std::size_t bucket_for(const net::FiveTuple& tuple) const;

  /// Priority-ordered replica chain of a bucket (front = highest priority).
  [[nodiscard]] const std::vector<net::ReplicaId>& chain(
      std::size_t bucket) const {
    return chains_.at(bucket);
  }

  /// Initial assignment: bucket i -> replicas[i mod n], single-entry chains.
  void assign_round_robin(const std::vector<net::ReplicaId>& replicas);

  /// Scale-in/drain: for every bucket headed by `leaving`, prepend the
  /// bucket's takeover replica (chosen round-robin from `available`).
  /// Existing flows keep finding `leaving` lower in the chain.
  void prepare_offline(net::ReplicaId leaving,
                       const std::vector<net::ReplicaId>& available);

  /// Scale-out: the new replica takes over ~1/(n+1) of the buckets by
  /// prepending itself; old heads remain in the chain for existing flows.
  void add_replica(net::ReplicaId incoming, std::size_t takeover_buckets);

  /// Removes a replica from every chain (flows fully drained / crashed).
  void purge(net::ReplicaId replica);

  /// Every distinct replica currently present in any chain.
  [[nodiscard]] std::vector<net::ReplicaId> active_replicas() const;

  /// Buckets whose chain head is `replica`.
  [[nodiscard]] std::size_t buckets_headed_by(net::ReplicaId replica) const;

 private:
  void prepend(std::size_t bucket, net::ReplicaId replica);

  std::size_t max_chain_;
  std::vector<std::vector<net::ReplicaId>> chains_;
  std::size_t takeover_cursor_ = 0;
};

/// Outcome of a redirector decision.
struct RedirectDecision {
  net::ReplicaId target{};
  /// Chain hops taken beyond the first replica (0 = handled at head).
  std::uint32_t redirections = 0;
  bool is_new_flow = false;
};

/// The redirector logic run at each replica (Fig 26). Given where flow
/// state actually lives (via `flow_at`), decides which replica must process
/// the packet: SYNs go to the chain head; packets of existing flows chase
/// the chain until the owning replica is found.
class Redirector {
 public:
  explicit Redirector(const BucketTable& table) : table_(table) {}

  using FlowLookup =
      std::function<bool(net::ReplicaId replica, const net::FiveTuple& tuple)>;

  [[nodiscard]] std::optional<RedirectDecision> resolve(
      const net::FiveTuple& tuple, bool is_syn,
      const FlowLookup& flow_at) const;

 private:
  const BucketTable& table_;
};

}  // namespace canal::lb
