#include "lb/bucket_table.h"

#include <algorithm>

namespace canal::lb {

BucketTable::BucketTable(std::size_t buckets, std::size_t max_chain)
    : max_chain_(max_chain), chains_(buckets) {}

std::size_t BucketTable::bucket_for(const net::FiveTuple& tuple) const {
  return net::flow_hash(tuple) % chains_.size();
}

void BucketTable::assign_round_robin(
    const std::vector<net::ReplicaId>& replicas) {
  if (replicas.empty()) return;
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    chains_[i].clear();
    chains_[i].push_back(replicas[i % replicas.size()]);
  }
}

void BucketTable::prepend(std::size_t bucket, net::ReplicaId replica) {
  auto& chain = chains_[bucket];
  chain.insert(chain.begin(), replica);
  if (chain.size() > max_chain_) chain.resize(max_chain_);
}

void BucketTable::prepare_offline(net::ReplicaId leaving,
                                  const std::vector<net::ReplicaId>& available) {
  if (available.empty()) return;
  for (std::size_t b = 0; b < chains_.size(); ++b) {
    auto& chain = chains_[b];
    if (chain.empty() || chain.front() != leaving) continue;
    // Round-robin across available replicas to spread the takeover load.
    net::ReplicaId takeover = available[takeover_cursor_ % available.size()];
    ++takeover_cursor_;
    if (takeover == leaving) {
      takeover = available[takeover_cursor_ % available.size()];
      ++takeover_cursor_;
    }
    prepend(b, takeover);
  }
}

void BucketTable::add_replica(net::ReplicaId incoming,
                              std::size_t takeover_buckets) {
  // Empty chains (all prior replicas purged) must be claimed regardless of
  // the takeover quota, or those buckets would blackhole flows.
  for (auto& chain : chains_) {
    if (chain.empty()) chain.push_back(incoming);
  }
  std::size_t taken = 0;
  for (std::size_t b = 0; b < chains_.size() && taken < takeover_buckets; ++b) {
    // Spread takeovers across the table deterministically.
    const std::size_t bucket =
        (b * 2654435761u + takeover_cursor_) % chains_.size();
    auto& chain = chains_[bucket];
    if (!chain.empty() && chain.front() == incoming) continue;
    prepend(bucket, incoming);
    ++taken;
  }
  ++takeover_cursor_;
}

void BucketTable::purge(net::ReplicaId replica) {
  for (auto& chain : chains_) {
    chain.erase(std::remove(chain.begin(), chain.end(), replica), chain.end());
  }
}

std::vector<net::ReplicaId> BucketTable::active_replicas() const {
  std::vector<net::ReplicaId> out;
  for (const auto& chain : chains_) {
    for (const auto replica : chain) {
      if (std::find(out.begin(), out.end(), replica) == out.end()) {
        out.push_back(replica);
      }
    }
  }
  return out;
}

std::size_t BucketTable::buckets_headed_by(net::ReplicaId replica) const {
  std::size_t n = 0;
  for (const auto& chain : chains_) {
    if (!chain.empty() && chain.front() == replica) ++n;
  }
  return n;
}

std::optional<RedirectDecision> Redirector::resolve(
    const net::FiveTuple& tuple, bool is_syn, const FlowLookup& flow_at) const {
  const std::size_t bucket = table_.bucket_for(tuple);
  const auto& chain = table_.chain(bucket);
  if (chain.empty()) return std::nullopt;

  if (is_syn) {
    // New flows always land on the highest-priority replica.
    return RedirectDecision{chain.front(), 0, true};
  }
  // Existing flows chase the chain until the replica holding the flow
  // record is found; each hop beyond the head is one redirection.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (flow_at(chain[i], tuple)) {
      return RedirectDecision{chain[i], static_cast<std::uint32_t>(i), false};
    }
  }
  // No replica knows the flow (fully aged out): treat as new at the head.
  return RedirectDecision{chain.front(), 0, true};
}

}  // namespace canal::lb
