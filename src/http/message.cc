#include "http/message.h"

#include <algorithm>
#include <cctype>

namespace canal::http {
namespace {

constexpr std::string_view kMethodNames[] = {
    "GET",     "HEAD",    "POST",  "PUT",  "DELETE",
    "CONNECT", "OPTIONS", "TRACE", "PATCH"};

char ascii_lower(char c) noexcept {
  return static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string_view method_name(Method m) noexcept {
  return kMethodNames[static_cast<std::uint8_t>(m)];
}

std::optional<Method> parse_method(std::string_view text) noexcept {
  for (std::size_t i = 0; i < std::size(kMethodNames); ++i) {
    if (text == kMethodNames[i]) return static_cast<Method>(i);
  }
  return std::nullopt;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

void HeaderMap::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::set(std::string name, std::string value) {
  remove(name);
  add(std::move(name), std::move(value));
}

std::string& HeaderMap::value_slot(std::string_view name) {
  std::size_t found = entries_.size();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (iequals(entries_[i].first, name)) {
      found = i;
      break;
    }
  }
  if (found == entries_.size()) {
    entries_.emplace_back(std::string(name), std::string());
    return entries_.back().second;
  }
  // set() semantics: one value per name — drop any later duplicates.
  for (std::size_t i = entries_.size(); i-- > found + 1;) {
    if (iequals(entries_[i].first, name)) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  return entries_[found].second;
}

void HeaderMap::remove(std::string_view name) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const auto& e) {
                                  return iequals(e.first, name);
                                }),
                 entries_.end());
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (iequals(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

bool HeaderMap::contains(std::string_view name) const {
  return get(name).has_value();
}

std::size_t HeaderMap::wire_size() const noexcept {
  std::size_t total = 0;
  for (const auto& [n, v] : entries_) total += n.size() + v.size() + 4;
  return total;
}

std::string_view Request::path_only() const noexcept {
  const std::string_view p = path;
  const auto q = p.find('?');
  return q == std::string_view::npos ? p : p.substr(0, q);
}

std::optional<std::string_view> Request::query_param(
    std::string_view key) const noexcept {
  const std::string_view p = path;
  const auto q = p.find('?');
  if (q == std::string_view::npos) return std::nullopt;
  std::string_view qs = p.substr(q + 1);
  while (!qs.empty()) {
    const auto amp = qs.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? qs : qs.substr(0, amp);
    const auto eq = pair.find('=');
    const std::string_view k =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (k == key) {
      return eq == std::string_view::npos ? std::string_view{}
                                          : pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    qs = qs.substr(amp + 1);
  }
  return std::nullopt;
}

std::string Request::serialize() const {
  std::string out;
  serialize_to(out);
  return out;
}

void Request::serialize_to(std::string& out) const {
  out.clear();
  out.reserve(wire_size());
  out.append(method_name(method));
  out.push_back(' ');
  out.append(path);
  out.push_back(' ');
  out.append(version);
  out.append("\r\n");
  for (const auto& [n, v] : headers.entries()) {
    out.append(n).append(": ").append(v).append("\r\n");
  }
  out.append("\r\n");
  out.append(body);
}

std::size_t Request::wire_size() const noexcept {
  return method_name(method).size() + 1 + path.size() + 1 + version.size() +
         2 + headers.wire_size() + 2 + body.size();
}

std::string Response::serialize() const {
  std::string out;
  serialize_to(out);
  return out;
}

void Response::serialize_to(std::string& out) const {
  out.clear();
  out.reserve(wire_size());
  out.append(version);
  out.push_back(' ');
  char code[4] = {static_cast<char>('0' + status / 100),
                  static_cast<char>('0' + (status / 10) % 10),
                  static_cast<char>('0' + status % 10), '\0'};
  out.append(status >= 100 && status <= 999 ? std::string_view(code, 3)
                                            : std::string_view());
  if (status < 100 || status > 999) out.append(std::to_string(status));
  out.push_back(' ');
  out.append(reason);
  out.append("\r\n");
  for (const auto& [n, v] : headers.entries()) {
    out.append(n).append(": ").append(v).append("\r\n");
  }
  out.append("\r\n");
  out.append(body);
}

std::size_t Response::wire_size() const noexcept {
  return version.size() + 1 + 3 + 1 + reason.size() + 2 + headers.wire_size() +
         2 + body.size();
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace canal::http
