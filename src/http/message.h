// HTTP/1.1 message model.
//
// Requests and responses the mesh dataplane routes on. Header matching is
// case-insensitive per RFC 9110. Bodies are real byte strings so parser and
// serializer round-trip exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace canal::http {

enum class Method : std::uint8_t {
  kGet,
  kHead,
  kPost,
  kPut,
  kDelete,
  kConnect,
  kOptions,
  kTrace,
  kPatch,
};

[[nodiscard]] std::string_view method_name(Method m) noexcept;
[[nodiscard]] std::optional<Method> parse_method(std::string_view text) noexcept;

/// Ordered multimap of headers with case-insensitive name lookup.
class HeaderMap {
 public:
  void add(std::string name, std::string value);
  /// Replaces all values of `name` with one value.
  void set(std::string name, std::string value);
  void remove(std::string_view name);

  /// Returns the value slot for `name` (first match; duplicates removed,
  /// set() semantics), adding an empty entry if absent. Assigning into the
  /// returned string overwrites in place and reuses its capacity — the
  /// allocation-free alternative to set() for values that outgrow the
  /// small-string buffer. The reference is invalidated by any mutation.
  std::string& value_slot(std::string_view name);

  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& entries()
      const noexcept {
    return entries_;
  }

  /// Serialized size in bytes (name + ": " + value + CRLF per entry).
  [[nodiscard]] std::size_t wire_size() const noexcept;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Case-insensitive ASCII string equality (header names, header match rules).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

struct Request {
  Method method = Method::kGet;
  std::string path = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
  /// Serializes into `out` (cleared first), reusing its capacity — the
  /// zero-allocation path for per-request serialization into a scratch
  /// buffer.
  void serialize_to(std::string& out) const;
  [[nodiscard]] std::size_t wire_size() const noexcept;

  /// Path without the query string.
  [[nodiscard]] std::string_view path_only() const noexcept;
  /// Value of query parameter `key`, if present.
  [[nodiscard]] std::optional<std::string_view> query_param(
      std::string_view key) const noexcept;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
  /// Serializes into `out` (cleared first), reusing its capacity.
  void serialize_to(std::string& out) const;
  [[nodiscard]] std::size_t wire_size() const noexcept;
  [[nodiscard]] bool is_error() const noexcept { return status >= 400; }
};

/// Canonical reason phrase for a status code ("OK", "Not Found", ...).
[[nodiscard]] std::string_view reason_phrase(int status) noexcept;

}  // namespace canal::http
