#include "http/route.h"

namespace canal::http {

bool RouteMatch::matches(const Request& req) const {
  switch (path_kind) {
    case PathKind::kAny:
      break;
    case PathKind::kExact:
      if (req.path_only() != path) return false;
      break;
    case PathKind::kPrefix:
      if (!req.path_only().starts_with(path)) return false;
      break;
  }
  if (method && req.method != *method) return false;
  for (const auto& h : headers) {
    const auto value = req.headers.get(h.name);
    const bool hit = h.value.empty() ? value.has_value()
                                     : (value && *value == h.value);
    if (hit == h.invert) return false;
  }
  for (const auto& q : query_params) {
    const auto value = req.query_param(q.key);
    if (!value) return false;
    if (!q.value.empty() && *value != q.value) return false;
  }
  return true;
}

const std::string* RouteAction::pick_cluster(double uniform_draw) const {
  if (clusters.empty()) return nullptr;
  return &clusters[pick_index(uniform_draw)].cluster;
}

std::size_t RouteAction::pick_index(double uniform_draw) const {
  std::uint64_t total = 0;
  for (const auto& wc : clusters) total += wc.weight;
  if (total == 0) return 0;
  const auto threshold =
      static_cast<std::uint64_t>(uniform_draw * static_cast<double>(total));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    acc += clusters[i].weight;
    if (threshold < acc) return i;
  }
  return clusters.size() - 1;
}

void RouteRule::apply(Request& req) const {
  for (const auto& name : action.request_headers_to_remove) {
    req.headers.remove(name);
  }
  for (const auto& [name, value] : action.request_headers_to_set) {
    req.headers.set(name, value);
  }
  if (action.prefix_rewrite &&
      match.path_kind == RouteMatch::PathKind::kPrefix) {
    req.path = *action.prefix_rewrite + req.path.substr(match.path.size());
  }
}

std::optional<RouteResult> RouteTable::resolve(Request& req,
                                               double uniform_draw) const {
  for (const auto& rule : rules_) {
    if (!rule.match.matches(req)) continue;

    RouteResult result;
    result.rule = &rule;
    if (rule.action.direct_response_status) {
      result.direct_response = true;
      result.direct_status = *rule.action.direct_response_status;
      return result;
    }
    const std::string* cluster = rule.action.pick_cluster(uniform_draw);
    if (cluster == nullptr) return std::nullopt;
    result.cluster = *cluster;

    rule.apply(req);
    return result;
  }
  return std::nullopt;
}

std::size_t RouteTable::config_bytes() const noexcept {
  // Rough serialized footprint: rule framing + strings. This drives the
  // control-plane southbound bandwidth model; absolute scale matters less
  // than growth with rule count.
  std::size_t total = 0;
  for (const auto& rule : rules_) {
    total += 64;  // framing, enums, weights, timeouts
    total += rule.name.size() + rule.match.path.size();
    for (const auto& h : rule.match.headers) {
      total += h.name.size() + h.value.size() + 8;
    }
    for (const auto& q : rule.match.query_params) {
      total += q.key.size() + q.value.size() + 8;
    }
    for (const auto& wc : rule.action.clusters) total += wc.cluster.size() + 8;
    for (const auto& [n, v] : rule.action.request_headers_to_set) {
      total += n.size() + v.size() + 8;
    }
    for (const auto& n : rule.action.request_headers_to_remove) {
      total += n.size() + 8;
    }
  }
  return total;
}

}  // namespace canal::http
