#include "http/parser.h"

#include <charconv>

namespace canal::http {
namespace detail {
namespace {

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

ParseStatus ParserBase::feed(std::string_view bytes) {
  if (status_ == ParseStatus::kError) return status_;
  if (buffer_.size() + bytes.size() > buffer_.capacity()) {
    // Grow geometrically so repeated small feeds don't reallocate per call.
    buffer_.reserve(
        std::max(buffer_.size() + bytes.size(), buffer_.capacity() * 2));
  }
  buffer_.append(bytes);
  return advance();
}

std::string_view ParserBase::remainder() const noexcept {
  return std::string_view(buffer_).substr(pos_);
}

void ParserBase::fail(std::string message) {
  error_ = std::move(message);
  state_ = State::kError;
  status_ = ParseStatus::kError;
}

void ParserBase::reset_base() {
  // Keep pipelined bytes that follow the completed message. Compact only
  // when the consumed prefix is large (or the buffer is fully consumed);
  // otherwise just advance pos_ — erasing the front of a long pipelined
  // buffer on every message is quadratic.
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ >= kCompactThreshold) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  scan_hint_ = pos_;
  state_ = State::kStartLine;
  status_ = ParseStatus::kNeedMore;
  body_expected_ = 0;
  chunked_ = false;
  body_.clear();
  chunk_remaining_ = 0;
  error_.clear();
  if (!buffer_.empty()) advance();
}

std::optional<std::string_view> ParserBase::take_line() {
  // Resume the CRLF search at the watermark (backed up one byte so a '\r'
  // that ended the previous scan can pair with a newly arrived '\n').
  std::size_t from = pos_;
  if (scan_hint_ > pos_ + 1) from = scan_hint_ - 1;
  const auto nl = buffer_.find("\r\n", from);
  if (nl == std::string::npos) {
    scan_hint_ = buffer_.size();
    return std::nullopt;
  }
  std::string_view line(buffer_.data() + pos_, nl - pos_);
  pos_ = nl + 2;
  scan_hint_ = pos_;
  return line;
}

bool ParserBase::handle_header_line(std::string_view line) {
  const auto colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail("malformed header line");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (name.back() == ' ' || name.back() == '\t') {
    fail("whitespace before header colon");  // RFC 9112 §5.1
    return false;
  }
  headers().add(std::string(name), std::string(trim(line.substr(colon + 1))));
  return true;
}

void ParserBase::finish_headers() {
  const auto te = headers().get("Transfer-Encoding");
  if (te && iequals(*te, "chunked")) {
    chunked_ = true;
    state_ = State::kChunkSize;
    return;
  }
  const auto cl = headers().get("Content-Length");
  if (cl) {
    std::size_t length = 0;
    const auto [p, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), length);
    if (ec != std::errc{} || p != cl->data() + cl->size()) {
      fail("bad Content-Length");
      return;
    }
    if (length > kMaxBodyBytes) {
      fail("body too large");
      return;
    }
    body_expected_ = length;
  }
  state_ = body_expected_ > 0 ? State::kBody : State::kDone;
}

ParseStatus ParserBase::advance() {
  for (;;) {
    switch (state_) {
      case State::kStartLine: {
        const auto line = take_line();
        if (!line) {
          if (buffer_.size() - pos_ > kMaxStartLine) {
            fail("start line too long");
            return status_;
          }
          return status_ = ParseStatus::kNeedMore;
        }
        if (line->empty()) continue;  // tolerate leading CRLF (RFC 9112 §2.2)
        if (!on_start_line(*line)) return status_;
        state_ = State::kHeaders;
        break;
      }
      case State::kHeaders: {
        const auto line = take_line();
        if (!line) {
          if (buffer_.size() - pos_ > kMaxHeaderBytes) {
            fail("headers too large");
            return status_;
          }
          return status_ = ParseStatus::kNeedMore;
        }
        if (line->empty()) {
          finish_headers();
          if (state_ == State::kError) return status_;
          break;
        }
        if (!handle_header_line(*line)) return status_;
        break;
      }
      case State::kBody: {
        const std::size_t available = buffer_.size() - pos_;
        if (available < body_expected_) {
          return status_ = ParseStatus::kNeedMore;
        }
        body_ = buffer_.substr(pos_, body_expected_);
        pos_ += body_expected_;
        state_ = State::kDone;
        break;
      }
      case State::kChunkSize: {
        const auto line = take_line();
        if (!line) return status_ = ParseStatus::kNeedMore;
        std::size_t size = 0;
        const std::string_view digits =
            line->substr(0, line->find(';'));  // ignore chunk extensions
        const auto [p, ec] = std::from_chars(
            digits.data(), digits.data() + digits.size(), size, 16);
        if (ec != std::errc{} || p == digits.data()) {
          fail("bad chunk size");
          return status_;
        }
        if (body_.size() + size > kMaxBodyBytes) {
          fail("body too large");
          return status_;
        }
        chunk_remaining_ = size;
        state_ = size == 0 ? State::kChunkTrailer : State::kChunkData;
        break;
      }
      case State::kChunkData: {
        const std::size_t available = buffer_.size() - pos_;
        if (available < chunk_remaining_ + 2) {
          return status_ = ParseStatus::kNeedMore;
        }
        body_.append(buffer_, pos_, chunk_remaining_);
        pos_ += chunk_remaining_;
        if (buffer_[pos_] != '\r' || buffer_[pos_ + 1] != '\n') {
          fail("missing CRLF after chunk");
          return status_;
        }
        pos_ += 2;
        state_ = State::kChunkSize;
        break;
      }
      case State::kChunkTrailer: {
        const auto line = take_line();
        if (!line) return status_ = ParseStatus::kNeedMore;
        if (line->empty()) {
          state_ = State::kDone;
          break;
        }
        if (!handle_header_line(*line)) return status_;
        break;
      }
      case State::kDone:
        set_body(std::move(body_));
        body_.clear();
        return status_ = ParseStatus::kComplete;
      case State::kError:
        return status_;
    }
  }
}

}  // namespace detail

bool RequestParser::on_start_line(std::string_view line) {
  const auto sp1 = line.find(' ');
  const auto sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    fail("malformed request line");
    return false;
  }
  const auto method = parse_method(line.substr(0, sp1));
  if (!method) {
    fail("unknown method");
    return false;
  }
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (target.empty() || (version != "HTTP/1.1" && version != "HTTP/1.0")) {
    fail("malformed request line");
    return false;
  }
  request_.method = *method;
  request_.path = std::string(target);
  request_.version = std::string(version);
  return true;
}

void RequestParser::reset() {
  request_ = Request{};
  reset_base();
}

bool ResponseParser::on_start_line(std::string_view line) {
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    fail("malformed status line");
    return false;
  }
  const std::string_view version = line.substr(0, sp1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail("bad version");
    return false;
  }
  const auto sp2 = line.find(' ', sp1 + 1);
  const std::string_view code_text =
      sp2 == std::string_view::npos ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
  int code = 0;
  const auto [p, ec] =
      std::from_chars(code_text.data(), code_text.data() + code_text.size(), code);
  if (ec != std::errc{} || p != code_text.data() + code_text.size() ||
      code < 100 || code > 599) {
    fail("bad status code");
    return false;
  }
  response_.version = std::string(version);
  response_.status = code;
  response_.reason = sp2 == std::string_view::npos
                         ? std::string{}
                         : std::string(line.substr(sp2 + 1));
  return true;
}

void ResponseParser::reset() {
  response_ = Response{};
  reset_base();
}

}  // namespace canal::http
