// Incremental HTTP/1.1 parser.
//
// Feed arbitrary byte chunks; the parser yields a complete Request/Response
// when one is available. Supports Content-Length and chunked
// transfer-coding bodies. Malformed input drives the parser into a sticky
// error state — a proxy must fail closed on garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace canal::http {

enum class ParseStatus : std::uint8_t {
  kNeedMore,   ///< More bytes required.
  kComplete,   ///< A full message was parsed; retrieve and reset.
  kError,      ///< Malformed input; parser must be reset.
};

namespace detail {

/// Common parsing machinery for requests and responses.
class ParserBase {
 public:
  /// Appends bytes and attempts to advance. Safe to call with partial data.
  ParseStatus feed(std::string_view bytes);

  [[nodiscard]] ParseStatus status() const noexcept { return status_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes consumed beyond the completed message (pipelined data).
  [[nodiscard]] std::string_view remainder() const noexcept;

 protected:
  ParserBase() = default;
  ~ParserBase() = default;

  virtual bool on_start_line(std::string_view line) = 0;
  virtual HeaderMap& headers() = 0;
  virtual void set_body(std::string body) = 0;

  void reset_base();
  void fail(std::string message);

 private:
  enum class State : std::uint8_t {
    kStartLine,
    kHeaders,
    kBody,
    kChunkSize,
    kChunkData,
    kChunkTrailer,
    kDone,
    kError,
  };

  ParseStatus advance();
  std::optional<std::string_view> take_line();
  bool handle_header_line(std::string_view line);
  void finish_headers();

  State state_ = State::kStartLine;
  ParseStatus status_ = ParseStatus::kNeedMore;
  std::string buffer_;
  std::size_t pos_ = 0;
  /// CRLF-scan watermark: every index in [pos_, scan_hint_) is known not to
  /// start a "\r\n", so an incremental feed resumes the line search where
  /// the last one gave up instead of rescanning the whole pending buffer
  /// (the O(n^2) byte-at-a-time pathology).
  std::size_t scan_hint_ = 0;
  std::size_t body_expected_ = 0;
  bool chunked_ = false;
  std::string body_;
  std::size_t chunk_remaining_ = 0;
  std::string error_;

  static constexpr std::size_t kMaxStartLine = 16 * 1024;
  static constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 64 * 1024 * 1024;
  /// Consumed-prefix size past which reset_base() compacts the buffer.
  /// Compacting on every message makes a long pipelined burst quadratic
  /// (each erase memmoves the whole tail); below the threshold the
  /// consumed prefix is simply skipped via pos_.
  static constexpr std::size_t kCompactThreshold = 16 * 1024;
};

}  // namespace detail

/// Parses HTTP/1.1 requests.
class RequestParser final : public detail::ParserBase {
 public:
  /// The parsed request once status() == kComplete.
  [[nodiscard]] Request& request() noexcept { return request_; }

  /// Resets for the next message, retaining pipelined remainder bytes.
  void reset();

 private:
  bool on_start_line(std::string_view line) override;
  HeaderMap& headers() override { return request_.headers; }
  void set_body(std::string body) override { request_.body = std::move(body); }

  Request request_;
};

/// Parses HTTP/1.1 responses.
class ResponseParser final : public detail::ParserBase {
 public:
  [[nodiscard]] Response& response() noexcept { return response_; }
  void reset();

 private:
  bool on_start_line(std::string_view line) override;
  HeaderMap& headers() override { return response_.headers; }
  void set_body(std::string body) override { response_.body = std::move(body); }

  Response response_;
};

}  // namespace canal::http
