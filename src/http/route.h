// L7 traffic control: route matching and actions.
//
// This implements the service-mesh traffic-control feature set the paper
// lists in §4.1.1: route control (path/header/method/query matching),
// weighted traffic splitting (canary release, A/B testing), header
// mutation, retries/timeouts, and direct responses. The same table type is
// installed in Istio sidecars, Ambient waypoints, and Canal's mesh gateway.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "sim/time.h"

namespace canal::http {

/// One match condition; all populated fields must hold.
struct RouteMatch {
  enum class PathKind : std::uint8_t { kAny, kExact, kPrefix };

  PathKind path_kind = PathKind::kAny;
  std::string path;

  std::optional<Method> method;

  struct HeaderMatch {
    std::string name;
    /// Empty means "present"; otherwise exact (case-sensitive) value match.
    std::string value;
    bool invert = false;
  };
  std::vector<HeaderMatch> headers;

  struct QueryMatch {
    std::string key;
    std::string value;  // empty = present
  };
  std::vector<QueryMatch> query_params;

  [[nodiscard]] bool matches(const Request& req) const;
};

/// Destination cluster with a canary/AB split weight.
struct WeightedCluster {
  std::string cluster;
  std::uint32_t weight = 1;
};

/// What to do with a matched request.
struct RouteAction {
  /// Weighted destinations; a single entry is a plain route.
  std::vector<WeightedCluster> clusters;

  /// Respond immediately without forwarding (e.g. 403 from authorization).
  std::optional<int> direct_response_status;

  /// Header rewrites applied before forwarding.
  std::vector<std::pair<std::string, std::string>> request_headers_to_set;
  std::vector<std::string> request_headers_to_remove;

  /// Path prefix rewrite (applies to kPrefix matches).
  std::optional<std::string> prefix_rewrite;

  sim::Duration timeout = sim::seconds(15);
  std::uint32_t max_retries = 0;

  /// Picks a destination cluster given a uniform [0,1) draw.
  [[nodiscard]] const std::string* pick_cluster(double uniform_draw) const;

  /// Index into `clusters` the same draw selects (shared by pick_cluster
  /// and the proxy fastpath cache, so both consume the draw identically).
  /// Precondition: clusters is non-empty.
  [[nodiscard]] std::size_t pick_index(double uniform_draw) const;
};

struct RouteRule {
  std::string name;
  RouteMatch match;
  RouteAction action;

  /// Applies the action's request mutations (header removes/sets, prefix
  /// rewrite) to `req` — the side effects of a successful resolve().
  void apply(Request& req) const;
};

/// Result of route resolution.
struct RouteResult {
  const RouteRule* rule = nullptr;
  std::string cluster;  // chosen destination (after weighted pick)
  bool direct_response = false;
  int direct_status = 0;
};

/// First-match-wins ordered route table (one per virtual host / service).
class RouteTable {
 public:
  void add_rule(RouteRule rule) { rules_.push_back(std::move(rule)); }
  void clear() noexcept { rules_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] const std::vector<RouteRule>& rules() const noexcept {
    return rules_;
  }

  /// Resolves a request. `uniform_draw` in [0,1) drives weighted splits.
  /// Also applies the action's header mutations / prefix rewrite to `req`.
  [[nodiscard]] std::optional<RouteResult> resolve(Request& req,
                                                   double uniform_draw) const;

  /// Approximate serialized configuration size in bytes; used for
  /// southbound-bandwidth accounting in the control-plane model.
  [[nodiscard]] std::size_t config_bytes() const noexcept;

 private:
  std::vector<RouteRule> rules_;
};

}  // namespace canal::http
