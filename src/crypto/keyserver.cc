#include "crypto/keyserver.h"

#include <cstring>

#include "crypto/chacha20.h"
#include "crypto/mac.h"

namespace canal::crypto {
namespace {

Nonce96 identity_nonce(const std::string& identity) {
  return derive_nonce(identity, 0);
}

}  // namespace

KeyServer::KeyServer(sim::EventLoop& loop, net::AzId az, std::size_t cores,
                     sim::Rng rng, CryptoCostModel model)
    : loop_(loop),
      az_(az),
      cpu_(loop, cores),
      rng_(rng),
      model_(model),
      accel_(loop, cpu_, AccelMode::kBatched, model) {
  // Master key lives only in memory; a restart regenerates it, which is
  // exactly the paper's flush-on-restart property.
  for (auto& b : master_key_) b = static_cast<std::uint8_t>(rng_.next());
}

void KeyServer::store_private_key(const std::string& identity,
                                  std::uint64_t private_key) {
  std::string plaintext(8, '\0');
  std::memcpy(plaintext.data(), &private_key, 8);
  encrypted_keys_[identity] =
      chacha20_apply(master_key_, identity_nonce(identity), plaintext);
}

bool KeyServer::has_key(const std::string& identity) const {
  return encrypted_keys_.contains(identity);
}

void KeyServer::establish_channel(const std::string& requester_id) {
  channels_.insert(requester_id);
}

bool KeyServer::has_channel(const std::string& requester_id) const {
  return channels_.contains(requester_id);
}

std::optional<std::uint64_t> KeyServer::decrypt_key(
    const std::string& identity) const {
  const auto it = encrypted_keys_.find(identity);
  if (it == encrypted_keys_.end()) return std::nullopt;
  const std::string plaintext =
      chacha20_apply(master_key_, identity_nonce(identity), it->second);
  std::uint64_t key = 0;
  std::memcpy(&key, plaintext.data(), 8);
  return key;
}

void KeyServer::handle_sign(const std::string& requester_id,
                            const std::string& identity,
                            std::string transcript, SignCallback done) {
  if (!available_ || !has_channel(requester_id)) {
    ++rejected_;
    loop_.schedule(0, [done = std::move(done)] { done(std::nullopt); });
    return;
  }
  const auto key = decrypt_key(identity);
  if (!key) {
    ++rejected_;
    loop_.schedule(0, [done = std::move(done)] { done(std::nullopt); });
    return;
  }
  // Request admission/unmarshalling cost, then the batched asymmetric op.
  cpu_.execute(model_.key_server_overhead, [this, key = *key,
                                            transcript = std::move(transcript),
                                            done = std::move(done)]() mutable {
    accel_.submit([this, key, transcript = std::move(transcript),
                   done = std::move(done)]() mutable {
      // The plaintext key exists only for the duration of this operation.
      const Signature sig = sign(key, transcript, rng_);
      ++served_;
      done(sig);
    });
  });
}

void KeyServerClient::sign(const std::string& identity, std::string transcript,
                           KeyServer::SignCallback done) {
  if (server_ != nullptr && server_->available()) {
    ++remote_;
    const sim::Duration one_way = config_.model.key_server_one_way;
    // Request transit -> server handling -> response transit.
    loop_.schedule(one_way, [this, identity, transcript = std::move(transcript),
                             done = std::move(done), one_way]() mutable {
      server_->handle_sign(
          config_.requester_id, identity, std::move(transcript),
          [this, done = std::move(done), one_way](std::optional<Signature> sig) {
            loop_.schedule(one_way, [done = std::move(done), sig] { done(sig); });
          });
    });
    return;
  }
  local_fallback(std::move(transcript), std::move(done));
}

void KeyServerClient::local_fallback(std::string transcript,
                                     KeyServer::SignCallback done) {
  if (!config_.local_private_key) {
    loop_.schedule(0, [done = std::move(done)] { done(std::nullopt); });
    return;
  }
  ++fallback_;
  local_cpu_.execute(config_.model.software_asym_cost,
                     [this, transcript = std::move(transcript),
                      done = std::move(done)]() mutable {
                       done(canal::crypto::sign(*config_.local_private_key,
                                                transcript, rng_));
                     });
}

}  // namespace canal::crypto
