// Multi-tenant shared key server for remote mTLS acceleration (§4.1.3).
//
// Holds tenant long-term private keys — encrypted in memory with ChaCha20
// under a master key, never on disk, decrypted only while serving a request
// from a verified requester over a pre-established secure channel. Requests
// run through a batched accelerator; because the server aggregates
// handshakes from many services, its batches fill quickly and avoid the
// partial-batch stall of local acceleration (Fig 25).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "crypto/accelerator.h"
#include "crypto/cert.h"
#include "crypto/chacha20.h"
#include "crypto/cost_model.h"
#include "net/ids.h"
#include "sim/cpu.h"
#include "sim/event_loop.h"

namespace canal::crypto {

class KeyServer {
 public:
  KeyServer(sim::EventLoop& loop, net::AzId az, std::size_t cores,
            sim::Rng rng, CryptoCostModel model = {});

  [[nodiscard]] net::AzId az() const noexcept { return az_; }
  [[nodiscard]] bool available() const noexcept { return available_; }
  void set_available(bool available) noexcept { available_ = available; }

  /// Registers a tenant private key; stored ChaCha20-encrypted in memory.
  void store_private_key(const std::string& identity,
                         std::uint64_t private_key);
  [[nodiscard]] bool has_key(const std::string& identity) const;

  /// Establishes the pre-shared secure channel for a requester; all
  /// subsequent requests from that requester ride on it (no per-request
  /// TLS handshake).
  void establish_channel(const std::string& requester_id);
  [[nodiscard]] bool has_channel(const std::string& requester_id) const;

  using SignCallback = std::function<void(std::optional<Signature>)>;

  /// Serves a transcript-signing request arriving *at the server* (the
  /// client stub models the network). Rejects unknown requesters/identities.
  void handle_sign(const std::string& requester_id, const std::string& identity,
                   std::string transcript, SignCallback done);

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_;
  }
  [[nodiscard]] std::uint64_t requests_rejected() const noexcept {
    return rejected_;
  }
  [[nodiscard]] const AsymmetricAccelerator& accelerator() const noexcept {
    return accel_;
  }
  [[nodiscard]] sim::CpuSet& cpu() noexcept { return cpu_; }

 private:
  [[nodiscard]] std::optional<std::uint64_t> decrypt_key(
      const std::string& identity) const;

  sim::EventLoop& loop_;
  net::AzId az_;
  sim::CpuSet cpu_;
  sim::Rng rng_;
  CryptoCostModel model_;
  AsymmetricAccelerator accel_;
  Key256 master_key_{};
  bool available_ = true;
  std::unordered_map<std::string, std::string> encrypted_keys_;
  std::unordered_set<std::string> channels_;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Requester-side stub: adds network transit, falls back to local software
/// crypto when the in-AZ key server is unavailable (Appendix A).
class KeyServerClient {
 public:
  struct Config {
    std::string requester_id;
    CryptoCostModel model;
    /// Local private key for the fallback path (and for keyless-mode
    /// customers who never enroll a key with the cloud).
    std::optional<std::uint64_t> local_private_key;
  };

  KeyServerClient(sim::EventLoop& loop, sim::CpuSet& local_cpu, Config config,
                  sim::Rng rng)
      : loop_(loop),
        local_cpu_(local_cpu),
        config_(std::move(config)),
        rng_(rng) {}

  void attach_server(KeyServer* server) { server_ = server; }

  /// Signs `transcript` for `identity`: remotely via the key server when
  /// reachable, else locally in software. `done` receives nullopt only if
  /// both paths are impossible.
  void sign(const std::string& identity, std::string transcript,
            KeyServer::SignCallback done);

  [[nodiscard]] std::uint64_t remote_signs() const noexcept { return remote_; }
  [[nodiscard]] std::uint64_t fallback_signs() const noexcept {
    return fallback_;
  }

 private:
  void local_fallback(std::string transcript, KeyServer::SignCallback done);

  sim::EventLoop& loop_;
  sim::CpuSet& local_cpu_;
  Config config_;
  sim::Rng rng_;
  KeyServer* server_ = nullptr;
  std::uint64_t remote_ = 0;
  std::uint64_t fallback_ = 0;
};

}  // namespace canal::crypto
