// Calibrated crypto cost constants (see DESIGN.md §4).
//
// These are the simulation's analogue of measured hardware numbers:
// Fig 23 (completion ≈ 1 ms local accel / ≈ 2 ms software / ≈ 1.7 ms remote)
// and Fig 25 (AVX-512 batch of 8 with a 1 ms minimum flush timeout).
#pragma once

#include "sim/time.h"

namespace canal::crypto {

struct CryptoCostModel {
  /// Software modular exponentiation path on an old CPU model.
  sim::Duration software_asym_cost = sim::microseconds(2000);
  /// Accelerated (AVX-512/QAT) CPU cost per operation. AVX multi-buffer
  /// gives a ~3.5x speedup over the software path, not orders of
  /// magnitude — matching Fig 12's 43%-70% CPU saving from local offload.
  sim::Duration accel_per_op_cost = sim::microseconds(560);
  /// Ops per hardware batch (AVX-512 buffer holds 8 lanes).
  std::size_t accel_batch_size = 8;
  /// Minimum wait before a partial batch is flushed.
  sim::Duration accel_flush_timeout = sim::milliseconds(1);
  /// One-way network latency from requester to the in-AZ key server
  /// (0.7 ms measured round-trip overhead => 350 us per direction).
  sim::Duration key_server_one_way = sim::microseconds(350);
  /// Key-server request handling cost (decrypt key, marshal) per op.
  sim::Duration key_server_overhead = sim::microseconds(30);
  /// Symmetric record crypto cost per KiB of payload.
  sim::Duration symmetric_per_kib = sim::nanoseconds(1200);

  [[nodiscard]] sim::Duration symmetric_cost(std::uint64_t bytes) const {
    return static_cast<sim::Duration>(
        static_cast<double>(symmetric_per_kib) *
        (static_cast<double>(bytes) / 1024.0));
  }
};

}  // namespace canal::crypto
