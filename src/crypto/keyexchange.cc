#include "crypto/keyexchange.h"

#include <cstring>

#include "crypto/mac.h"

namespace canal::crypto {
namespace {

constexpr std::uint64_t kGroupOrder = kFieldPrime - 1;

/// Challenge hash e = H(r || message) reduced into the exponent group.
std::uint64_t challenge(std::uint64_t r, std::string_view message) {
  Key128 key{};
  key[0] = 0x53;  // 'S' for Schnorr domain
  std::string material;
  material.resize(8 + message.size());
  std::memcpy(material.data(), &r, 8);
  std::memcpy(material.data() + 8, message.data(), message.size());
  std::uint64_t e = siphash24(key, material) % kGroupOrder;
  if (e == 0) e = 1;
  return e;
}

}  // namespace

std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % kFieldPrime);
}

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  base %= kFieldPrime;
  while (exp > 0) {
    if (exp & 1) result = mod_mul(result, base);
    base = mod_mul(base, base);
    exp >>= 1;
  }
  return result;
}

KeyPair generate_keypair(sim::Rng& rng) {
  KeyPair kp;
  do {
    kp.private_key = rng.next() % kGroupOrder;
  } while (kp.private_key < 2);
  kp.public_key = mod_pow(kGenerator, kp.private_key);
  return kp;
}

std::uint64_t dh_shared_secret(std::uint64_t my_private,
                               std::uint64_t peer_public) noexcept {
  return mod_pow(peer_public, my_private);
}

std::string Signature::serialize() const {
  std::string out(16, '\0');
  std::memcpy(out.data(), &r, 8);
  std::memcpy(out.data() + 8, &s, 8);
  return out;
}

Signature sign(std::uint64_t private_key, std::string_view message,
               sim::Rng& rng) {
  Signature sig;
  std::uint64_t k = 0;
  do {
    k = rng.next() % kGroupOrder;
  } while (k < 2);
  sig.r = mod_pow(kGenerator, k);
  const std::uint64_t e = challenge(sig.r, message);
  // s = k - e*x mod (p-1); use 128-bit arithmetic to avoid overflow.
  const auto ex = static_cast<unsigned __int128>(e) * private_key;
  const auto ex_mod = static_cast<std::uint64_t>(ex % kGroupOrder);
  sig.s = (k + kGroupOrder - ex_mod) % kGroupOrder;
  return sig;
}

bool verify(std::uint64_t public_key, std::string_view message,
            const Signature& sig) noexcept {
  if (sig.r == 0 || sig.r >= kFieldPrime) return false;
  const std::uint64_t e = challenge(sig.r, message);
  // Check g^s * y^e == r.
  const std::uint64_t lhs =
      mod_mul(mod_pow(kGenerator, sig.s), mod_pow(public_key, e));
  return lhs == sig.r;
}

}  // namespace canal::crypto
