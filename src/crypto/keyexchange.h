// Toy finite-field asymmetric primitives: Diffie–Hellman key agreement and
// Schnorr signatures over Z_p^* with p = 2^61 - 1.
//
// NOT cryptographically secure — the group is far too small — but the
// algebra is real: shared secrets agree, signatures verify iff produced by
// the matching private key, and the operations have the asymmetric-crypto
// *shape* (modular exponentiation) whose cost the simulation models. The
// paper's mTLS handshakes, keyless mode, and key-server offloading all sit
// on these primitives.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/rng.h"

namespace canal::crypto {

/// The Mersenne prime 2^61 - 1.
constexpr std::uint64_t kFieldPrime = 2305843009213693951ULL;
/// Group generator.
constexpr std::uint64_t kGenerator = 3;

/// (a * b) mod p via 128-bit intermediate.
std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b) noexcept;
/// (base ^ exp) mod p, square-and-multiply.
std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp) noexcept;

struct KeyPair {
  std::uint64_t private_key = 0;
  std::uint64_t public_key = 0;  // g^private mod p
};

/// Generates a keypair from the deterministic simulation RNG.
KeyPair generate_keypair(sim::Rng& rng);

/// DH shared secret: peer_public ^ my_private mod p. Symmetric by algebra.
std::uint64_t dh_shared_secret(std::uint64_t my_private,
                               std::uint64_t peer_public) noexcept;

/// Schnorr-style signature (r = g^k, e = H(r||m), s = k - e*x mod (p-1)).
struct Signature {
  std::uint64_t r = 0;
  std::uint64_t s = 0;

  [[nodiscard]] std::string serialize() const;
};

Signature sign(std::uint64_t private_key, std::string_view message,
               sim::Rng& rng);
/// True iff `sig` was produced over `message` by the key matching `public_key`.
bool verify(std::uint64_t public_key, std::string_view message,
            const Signature& sig) noexcept;

}  // namespace canal::crypto
