// ChaCha20 stream cipher (RFC 8439 core).
//
// This is the real cipher — used for record protection on mesh mTLS
// sessions and for encrypting tenant private keys at rest in the key
// server's memory (§4.1.3). Key schedule and block function follow RFC 8439;
// the 32-bit counter variant is used.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace canal::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

/// Produces one 64-byte keystream block for (key, counter, nonce).
std::array<std::uint8_t, 64> chacha20_block(const Key256& key,
                                            std::uint32_t counter,
                                            const Nonce96& nonce);

/// XORs the keystream into `data` in place. Encryption == decryption.
void chacha20_xor(const Key256& key, const Nonce96& nonce,
                  std::uint32_t initial_counter, std::span<std::uint8_t> data);

/// Convenience: returns the transformed copy of a byte string.
std::string chacha20_apply(const Key256& key, const Nonce96& nonce,
                           std::string_view data,
                           std::uint32_t initial_counter = 1);

}  // namespace canal::crypto
