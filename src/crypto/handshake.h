// Mutual-TLS handshake state machine and record protection.
//
// A TLS-1.3-shaped flight structure over the toy asymmetric primitives:
//
//   client                                   server
//   ClientHello{random, eph_pub}     ->
//                                    <-      ServerHello{random, eph_pub}
//                                            + Certificate + CertVerify
//   Certificate + CertVerify
//   + Finished                       ->
//                                    <-      Finished
//
// Both sides verify the peer certificate against the trusted CA, check the
// CertVerify signature over the running transcript (proof of key
// possession), and derive directional ChaCha20 record keys from the
// ephemeral DH secret. The long-term-key signing operation is the
// *offloadable* asymmetric step: in key-server mode it is produced remotely
// (§4.1.3) and in keyless mode by a customer-premises signer (Appendix B).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "crypto/cert.h"
#include "crypto/chacha20.h"
#include "crypto/keyexchange.h"
#include "crypto/mac.h"
#include "sim/rng.h"

namespace canal::crypto {

struct ClientHello {
  std::uint64_t random = 0;
  std::uint64_t ephemeral_public = 0;

  [[nodiscard]] std::string serialize() const;
};

struct ServerHello {
  std::uint64_t random = 0;
  std::uint64_t ephemeral_public = 0;
  Certificate certificate;
  Signature cert_verify;  // over the transcript so far

  [[nodiscard]] std::string serialize() const;
};

struct ClientFinished {
  Certificate certificate;
  Signature cert_verify;
  std::array<std::uint8_t, 32> finished_mac{};

  [[nodiscard]] std::string serialize() const;
};

struct ServerFinished {
  std::array<std::uint8_t, 32> finished_mac{};
};

/// Directional record keys established by a completed handshake.
struct SessionKeys {
  Key256 client_to_server{};
  Key256 server_to_client{};
  std::string peer_identity;
};

enum class HandshakeError : std::uint8_t {
  kNone,
  kBadCertificate,
  kBadSignature,
  kBadFinished,
  kUnauthorizedPeer,
  kStateViolation,
};

[[nodiscard]] std::string_view handshake_error_name(HandshakeError e) noexcept;

/// Signs a transcript with a long-term private key. Local mode captures the
/// key directly; key-server / keyless modes forward to a remote signer.
using TranscriptSigner =
    std::function<Signature(std::string_view transcript)>;

/// Configuration shared by both handshake roles.
struct EndpointConfig {
  Certificate certificate;
  TranscriptSigner signer;        // produces CertVerify signatures
  std::uint64_t ca_public_key = 0;
  std::string ca_name;
  /// Authorization predicate over the peer SPIFFE identity; empty = allow.
  std::function<bool(std::string_view identity)> authorize_peer;
};

/// Client role of the mTLS handshake.
class ClientHandshake {
 public:
  ClientHandshake(EndpointConfig config, sim::Rng& rng);

  /// Flight 1. Must be called exactly once, first.
  ClientHello start();

  /// Processes the server flight, producing the client's final flight.
  /// Returns nullopt (and sets error()) on any verification failure.
  std::optional<ClientFinished> on_server_hello(const ServerHello& hello,
                                                sim::TimePoint now);

  /// Verifies the server Finished; the handshake is complete on success.
  bool on_server_finished(const ServerFinished& fin);

  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] HandshakeError error() const noexcept { return error_; }
  /// Valid only when complete().
  [[nodiscard]] const SessionKeys& keys() const noexcept { return keys_; }

 private:
  EndpointConfig config_;
  sim::Rng& rng_;
  KeyPair ephemeral_;
  std::uint64_t client_random_ = 0;
  std::string transcript_;
  std::uint64_t shared_secret_ = 0;
  SessionKeys keys_;
  bool started_ = false;
  bool complete_ = false;
  HandshakeError error_ = HandshakeError::kNone;
};

/// Server role of the mTLS handshake.
class ServerHandshake {
 public:
  ServerHandshake(EndpointConfig config, sim::Rng& rng);

  /// Processes flight 1 and produces flight 2.
  std::optional<ServerHello> on_client_hello(const ClientHello& hello);

  /// Verifies the client's final flight; on success returns the server
  /// Finished and the handshake is complete.
  std::optional<ServerFinished> on_client_finished(const ClientFinished& fin,
                                                   sim::TimePoint now);

  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] HandshakeError error() const noexcept { return error_; }
  [[nodiscard]] const SessionKeys& keys() const noexcept { return keys_; }

 private:
  EndpointConfig config_;
  sim::Rng& rng_;
  KeyPair ephemeral_;
  std::string transcript_;
  std::uint64_t shared_secret_ = 0;
  SessionKeys keys_;
  bool hello_done_ = false;
  bool complete_ = false;
  HandshakeError error_ = HandshakeError::kNone;
};

/// One direction of an established session: ChaCha20 + MAC records with
/// sequence-numbered nonces (encrypt-then-MAC).
class RecordChannel {
 public:
  explicit RecordChannel(Key256 key) : key_(key) {}

  /// Encrypts and authenticates one record.
  [[nodiscard]] std::string seal(std::string_view plaintext);

  /// Verifies and decrypts one record; nullopt on tamper or replay-skew.
  [[nodiscard]] std::optional<std::string> open(std::string_view record);

  [[nodiscard]] std::uint64_t sealed_records() const noexcept {
    return seal_seq_;
  }

 private:
  Key256 key_;
  std::uint64_t seal_seq_ = 0;
  std::uint64_t open_seq_ = 0;
};

/// Derives the directional session keys both sides must agree on.
SessionKeys derive_session_keys(std::uint64_t shared_secret,
                                std::uint64_t client_random,
                                std::uint64_t server_random);

}  // namespace canal::crypto
