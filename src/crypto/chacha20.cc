#include "crypto/chacha20.h"

#include <cstring>

namespace canal::crypto {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const Key256& key,
                                            std::uint32_t counter,
                                            const Nonce96& nonce) {
  std::uint32_t state[16];
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, working[i] + state[i]);
  }
  return out;
}

void chacha20_xor(const Key256& key, const Nonce96& nonce,
                  std::uint32_t initial_counter, std::span<std::uint8_t> data) {
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const auto block = chacha20_block(key, counter++, nonce);
    const std::size_t n = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= block[i];
    offset += n;
  }
}

std::string chacha20_apply(const Key256& key, const Nonce96& nonce,
                           std::string_view data,
                           std::uint32_t initial_counter) {
  std::string out(data);
  chacha20_xor(key, nonce, initial_counter,
               std::span<std::uint8_t>(
                   reinterpret_cast<std::uint8_t*>(out.data()), out.size()));
  return out;
}

}  // namespace canal::crypto
