// Rolling certificate rotation across a set of workload identities.
//
// Rotation is the control-plane crypto workload of the paper's §2.1: every
// workload's certificate is re-signed by the CA before expiry, and the new
// cert must be distributed to the proxy that serves that workload. The
// signing ops run through an AsymmetricAccelerator — a staggered wave
// feeds the 8-slot batch engine, so rotation throughput inherits the
// Fig 25 batch/flush-timeout dynamics — and distribution is the caller's
// concern (the mesh layer pushes cert bytes as config epochs), keeping
// this module free of any k8s dependency.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crypto/accelerator.h"
#include "crypto/cert.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace canal::crypto {

struct RotationOptions {
  /// Gap between consecutive signing submissions. A stagger below the
  /// accelerator's 1 ms flush timeout keeps batches full; above it,
  /// every op eats the partial-batch stall.
  sim::Duration stagger = sim::microseconds(100);
  sim::Duration validity = sim::hours(24);
};

struct RotationReport {
  std::size_t rotated = 0;
  /// First submission to last certificate distributed.
  sim::Duration makespan = 0;
  /// Total wire bytes of the freshly issued certificates.
  std::uint64_t cert_bytes = 0;
};

/// One rotation wave: staggered signing of every identity.
class CertRotationWave {
 public:
  using Options = RotationOptions;
  using Report = RotationReport;

  /// Called with each freshly issued certificate, in issue order.
  using Distribute = std::function<void(const Certificate& cert)>;

  CertRotationWave(sim::EventLoop& loop, CertificateAuthority& ca,
                   Options options = {})
      : loop_(loop), ca_(ca), options_(options) {}

  /// Rotates every identity: submission i enters `accel` at
  /// now + i * stagger; on completion the CA issues the new certificate,
  /// `distribute` (optional) receives it, and the wave's report advances.
  /// `done` fires after the last certificate is distributed. All draws
  /// come from `rng`, so a fixed seed reproduces the exact schedule.
  void run(const std::vector<std::string>& identities,
           AsymmetricAccelerator& accel, sim::Rng& rng,
           Distribute distribute = nullptr,
           std::function<void(Report)> done = nullptr);

 private:
  sim::EventLoop& loop_;
  CertificateAuthority& ca_;
  Options options_;
};

}  // namespace canal::crypto
