#include "crypto/accelerator.h"

#include <utility>
#include <vector>

namespace canal::crypto {

void AsymmetricAccelerator::submit(std::function<void()> done) {
  const sim::TimePoint submitted = loop_.now();
  if (mode_ == AccelMode::kSoftware) {
    cpu_.execute(model_.software_asym_cost, [this, submitted,
                                             done = std::move(done)]() mutable {
      ++completed_;
      op_latency_us_.record(sim::to_microseconds(loop_.now() - submitted));
      if (done) done();
    });
    return;
  }

  batch_.push_back({submitted, std::move(done)});
  if (batch_.size() >= model_.accel_batch_size) {
    flush_timer_.cancel();
    flush_batch();
  } else if (!flush_timer_.pending()) {
    flush_timer_ = loop_.schedule(model_.accel_flush_timeout,
                                  [this] { flush_batch(); });
  }
}

void AsymmetricAccelerator::flush_batch() {
  if (batch_.empty()) return;
  std::vector<PendingOp> ops;
  const std::size_t take =
      std::min(batch_.size(), model_.accel_batch_size);
  for (std::size_t i = 0; i < take; ++i) {
    ops.push_back(std::move(batch_.front()));
    batch_.pop_front();
  }
  ++batches_flushed_;
  // The batch's lanes execute in parallel across available cores; each op
  // costs accel_per_op_cost of CPU.
  for (auto& op : ops) {
    cpu_.execute(model_.accel_per_op_cost,
                 [this, submitted = op.submitted,
                  done = std::move(op.done)]() mutable {
                   ++completed_;
                   op_latency_us_.record(
                       sim::to_microseconds(loop_.now() - submitted));
                   if (done) done();
                 });
  }
  // If a backlog remains (burst larger than one batch), keep draining.
  if (!batch_.empty()) {
    flush_timer_.cancel();
    flush_batch();
  }
}

}  // namespace canal::crypto
