#include "crypto/mac.h"

#include <cstring>

namespace canal::crypto {
namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
              std::uint64_t& v3) noexcept {
  v0 += v1; v1 = rotl64(v1, 13); v1 ^= v0; v0 = rotl64(v0, 32);
  v2 += v3; v3 = rotl64(v3, 16); v3 ^= v2;
  v0 += v3; v3 = rotl64(v3, 21); v3 ^= v0;
  v2 += v1; v1 = rotl64(v1, 17); v1 ^= v2; v2 = rotl64(v2, 32);
}

std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::uint64_t siphash24(const Key128& key, std::span<const std::uint8_t> data) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t len = data.size();
  const std::size_t whole = len & ~std::size_t{7};
  for (std::size_t i = 0; i < whole; i += 8) {
    const std::uint64_t m = load_le64(data.data() + i);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }
  std::uint64_t last = std::uint64_t{len & 0xFF} << 56;
  for (std::size_t i = whole; i < len; ++i) {
    last |= std::uint64_t{data[i]} << (8 * (i - whole));
  }
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;
  v2 ^= 0xFF;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t siphash24(const Key128& key, std::string_view data) {
  return siphash24(key, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(data.data()),
                            data.size()));
}

std::array<std::uint8_t, 32> mac256(const Key256& key, std::string_view data) {
  std::array<std::uint8_t, 32> out{};
  for (int lane = 0; lane < 4; ++lane) {
    Key128 lane_key{};
    std::memcpy(lane_key.data(), key.data() + (lane % 2) * 16, 16);
    lane_key[0] ^= static_cast<std::uint8_t>(0xA5 + lane);  // domain separation
    const std::uint64_t h = siphash24(lane_key, data);
    std::memcpy(out.data() + lane * 8, &h, 8);
  }
  return out;
}

Key256 derive_key(std::string_view ikm, std::string_view label) {
  Key256 out{};
  for (int lane = 0; lane < 4; ++lane) {
    Key128 lane_key{};
    lane_key[0] = static_cast<std::uint8_t>(lane);
    lane_key[1] = 0x5C;
    std::string material;
    material.reserve(ikm.size() + label.size() + 1);
    material.append(ikm);
    material.push_back('|');
    material.append(label);
    const std::uint64_t h = siphash24(lane_key, material);
    std::memcpy(out.data() + lane * 8, &h, 8);
  }
  return out;
}

Nonce96 derive_nonce(std::string_view label, std::uint64_t sequence) {
  Nonce96 out{};
  Key128 key{};
  key[0] = 0x36;
  const std::uint64_t h = siphash24(key, label);
  std::memcpy(out.data(), &h, 4);
  std::memcpy(out.data() + 4, &sequence, 8);
  return out;
}

bool tags_equal(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace canal::crypto
