// Asymmetric-crypto execution engines.
//
// Three ways a handshake's expensive modular exponentiation can run:
//   kSoftware — plain CPU cost (old instance types without QAT/AVX-512),
//   kBatched  — hardware batch engine: 8-slot buffer, flushes when full or
//               after a 1 ms timeout. Reproduces the Fig 25 pathology: fewer
//               than 8 concurrent new connections => every op waits out the
//               flush timer.
// The remote key server (keyserver.h) wraps a kBatched engine behind an RPC.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "crypto/cost_model.h"
#include "sim/cpu.h"
#include "sim/event_loop.h"
#include "sim/stats.h"

namespace canal::crypto {

enum class AccelMode : std::uint8_t { kSoftware, kBatched };

/// Completes asymmetric operations with modeled latency, invoking the
/// completion callback on the simulation event loop.
class AsymmetricAccelerator {
 public:
  AsymmetricAccelerator(sim::EventLoop& loop, sim::CpuSet& cpu, AccelMode mode,
                        CryptoCostModel model = {})
      : loop_(loop), cpu_(cpu), mode_(mode), model_(model) {}

  AsymmetricAccelerator(const AsymmetricAccelerator&) = delete;
  AsymmetricAccelerator& operator=(const AsymmetricAccelerator&) = delete;

  /// Submits one asymmetric operation; `done` fires at modeled completion.
  void submit(std::function<void()> done);

  [[nodiscard]] AccelMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t batches_flushed() const noexcept {
    return batches_flushed_;
  }
  /// Per-op latency from submit to completion (microseconds).
  [[nodiscard]] const sim::Histogram& op_latency_us() const noexcept {
    return op_latency_us_;
  }

 private:
  struct PendingOp {
    sim::TimePoint submitted;
    std::function<void()> done;
  };

  void flush_batch();

  sim::EventLoop& loop_;
  sim::CpuSet& cpu_;
  AccelMode mode_;
  CryptoCostModel model_;
  std::deque<PendingOp> batch_;
  sim::EventHandle flush_timer_;
  std::uint64_t completed_ = 0;
  std::uint64_t batches_flushed_ = 0;
  sim::Histogram op_latency_us_;
};

}  // namespace canal::crypto
