#include "crypto/cert.h"

#include <cstring>

namespace canal::crypto {

std::string Certificate::to_be_signed() const {
  std::string out;
  out.reserve(identity.size() + issuer.size() + 32);
  out.append(identity);
  out.push_back('\0');
  out.append(issuer);
  out.push_back('\0');
  char fixed[24];
  std::memcpy(fixed, &public_key, 8);
  std::memcpy(fixed + 8, &not_before, 8);
  std::memcpy(fixed + 16, &not_after, 8);
  out.append(fixed, sizeof(fixed));
  return out;
}

std::size_t Certificate::wire_size() const noexcept {
  return identity.size() + issuer.size() + 8 /*key*/ + 16 /*validity*/ +
         16 /*signature*/ + 16 /*framing*/;
}

Certificate CertificateAuthority::issue(std::string identity,
                                        std::uint64_t subject_public_key,
                                        sim::TimePoint now,
                                        sim::Duration validity,
                                        sim::Rng& rng) {
  Certificate cert;
  cert.identity = std::move(identity);
  cert.public_key = subject_public_key;
  cert.issuer = name_;
  cert.not_before = now;
  cert.not_after = now + validity;
  cert.signature = sign(keypair_.private_key, cert.to_be_signed(), rng);
  return cert;
}

bool CertificateAuthority::verify_certificate(const Certificate& cert,
                                              std::uint64_t ca_public_key,
                                              std::string_view expected_issuer,
                                              sim::TimePoint now) noexcept {
  if (cert.issuer != expected_issuer) return false;
  if (now < cert.not_before || now > cert.not_after) return false;
  return verify(ca_public_key, cert.to_be_signed(), cert.signature);
}

std::optional<std::string_view> spiffe_trust_domain(
    std::string_view identity) noexcept {
  constexpr std::string_view kScheme = "spiffe://";
  if (!identity.starts_with(kScheme)) return std::nullopt;
  std::string_view rest = identity.substr(kScheme.size());
  const auto slash = rest.find('/');
  const std::string_view domain =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  if (domain.empty()) return std::nullopt;
  return domain;
}

}  // namespace canal::crypto
