// Workload certificates and the mesh certificate authority.
//
// Identities follow the SPIFFE convention the mesh uses for zero-trust
// authorization ("spiffe://tenant-1/ns/default/sa/frontend"). Certificates
// bind an identity to a public key under a Schnorr signature from the CA.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "crypto/keyexchange.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace canal::crypto {

struct Certificate {
  std::string identity;          // SPIFFE-style URI
  std::uint64_t public_key = 0;  // subject's long-term public key
  std::string issuer;
  sim::TimePoint not_before = 0;
  sim::TimePoint not_after = 0;
  Signature signature;  // CA signature over to_be_signed()

  /// The byte string the CA signs.
  [[nodiscard]] std::string to_be_signed() const;
  /// Approximate wire size, for control-plane bandwidth accounting.
  [[nodiscard]] std::size_t wire_size() const noexcept;
};

/// Issues and verifies workload certificates.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, sim::Rng& rng)
      : name_(std::move(name)), keypair_(generate_keypair(rng)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t public_key() const noexcept {
    return keypair_.public_key;
  }

  /// Issues a certificate for `identity` bound to `subject_public_key`.
  Certificate issue(std::string identity, std::uint64_t subject_public_key,
                    sim::TimePoint now, sim::Duration validity, sim::Rng& rng);

  /// Full verification against a trusted CA key: signature, issuer, validity.
  static bool verify_certificate(const Certificate& cert,
                                 std::uint64_t ca_public_key,
                                 std::string_view expected_issuer,
                                 sim::TimePoint now) noexcept;

 private:
  std::string name_;
  KeyPair keypair_;
};

/// Parses "spiffe://<trust-domain>/..." and returns the trust domain
/// (tenant) component, or nullopt on malformed identities.
std::optional<std::string_view> spiffe_trust_domain(
    std::string_view identity) noexcept;

}  // namespace canal::crypto
