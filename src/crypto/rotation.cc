#include "crypto/rotation.h"

#include <memory>
#include <utility>

namespace canal::crypto {

void CertRotationWave::run(const std::vector<std::string>& identities,
                           AsymmetricAccelerator& accel, sim::Rng& rng,
                           Distribute distribute,
                           std::function<void(Report)> done) {
  struct State {
    std::vector<std::string> identities;
    std::vector<std::uint64_t> public_keys;
    std::size_t remaining = 0;
    sim::TimePoint started = 0;
    Report report;
    Distribute distribute;
    std::function<void(Report)> done;
  };
  auto st = std::make_shared<State>();
  st->identities = identities;
  st->remaining = identities.size();
  st->started = loop_.now();
  st->distribute = std::move(distribute);
  st->done = std::move(done);
  if (st->remaining == 0) {
    loop_.post_at(loop_.now(), [st] {
      if (st->done) st->done(st->report);
    });
    return;
  }
  // Subject keypairs are drawn up front in identity order, so the Rng
  // draw sequence is independent of accelerator mode and batch timing.
  st->public_keys.reserve(identities.size());
  for (std::size_t i = 0; i < identities.size(); ++i) {
    st->public_keys.push_back(generate_keypair(rng).public_key);
  }
  for (std::size_t i = 0; i < st->identities.size(); ++i) {
    const sim::TimePoint submit_at =
        st->started + static_cast<sim::Duration>(i) * options_.stagger;
    loop_.post_at(submit_at, [this, st, i, &accel, &rng] {
      accel.submit([this, st, i, &rng] {
        Certificate cert =
            ca_.issue(st->identities[i], st->public_keys[i], loop_.now(),
                      options_.validity, rng);
        st->report.cert_bytes += cert.wire_size();
        ++st->report.rotated;
        if (st->distribute) st->distribute(cert);
        if (--st->remaining == 0) {
          st->report.makespan = loop_.now() - st->started;
          if (st->done) st->done(st->report);
        }
      });
    });
  }
}

}  // namespace canal::crypto
