// Keyed hashing: SipHash-2-4 and a hash-based key-derivation helper.
//
// SipHash-2-4 is implemented per the Aumasson–Bernstein reference and backs
// message authentication on handshake transcripts plus the KDF that expands
// the Diffie–Hellman shared secret into record-protection keys.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/chacha20.h"  // Key256 / Nonce96 aliases

namespace canal::crypto {

using Key128 = std::array<std::uint8_t, 16>;

/// SipHash-2-4 of `data` under a 128-bit key.
std::uint64_t siphash24(const Key128& key, std::span<const std::uint8_t> data);
std::uint64_t siphash24(const Key128& key, std::string_view data);

/// 256-bit MAC tag: four SipHash lanes with domain-separated keys.
std::array<std::uint8_t, 32> mac256(const Key256& key, std::string_view data);

/// Derives a 256-bit key from input keying material and a label
/// (HKDF-like expand built on SipHash lanes).
Key256 derive_key(std::string_view ikm, std::string_view label);

/// Derives a 96-bit nonce from a label and a sequence number.
Nonce96 derive_nonce(std::string_view label, std::uint64_t sequence);

/// Constant-time comparison of equal-length tags.
bool tags_equal(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b) noexcept;

}  // namespace canal::crypto
