#include "crypto/handshake.h"

#include <cstring>

namespace canal::crypto {
namespace {

std::string pack_u64(std::uint64_t a, std::uint64_t b) {
  std::string out(16, '\0');
  std::memcpy(out.data(), &a, 8);
  std::memcpy(out.data() + 8, &b, 8);
  return out;
}

std::array<std::uint8_t, 32> finished_mac(const Key256& base_key,
                                          std::string_view transcript,
                                          std::string_view label) {
  const Key256 mac_key = derive_key(
      std::string_view(reinterpret_cast<const char*>(base_key.data()),
                       base_key.size()),
      label);
  return mac256(mac_key, transcript);
}

}  // namespace

std::string_view handshake_error_name(HandshakeError e) noexcept {
  switch (e) {
    case HandshakeError::kNone: return "none";
    case HandshakeError::kBadCertificate: return "bad-certificate";
    case HandshakeError::kBadSignature: return "bad-signature";
    case HandshakeError::kBadFinished: return "bad-finished";
    case HandshakeError::kUnauthorizedPeer: return "unauthorized-peer";
    case HandshakeError::kStateViolation: return "state-violation";
  }
  return "unknown";
}

std::string ClientHello::serialize() const {
  return pack_u64(random, ephemeral_public);
}

std::string ServerHello::serialize() const {
  return pack_u64(random, ephemeral_public) + certificate.to_be_signed() +
         cert_verify.serialize();
}

std::string ClientFinished::serialize() const {
  std::string out = certificate.to_be_signed() + cert_verify.serialize();
  out.append(reinterpret_cast<const char*>(finished_mac.data()),
             finished_mac.size());
  return out;
}

SessionKeys derive_session_keys(std::uint64_t shared_secret,
                                std::uint64_t client_random,
                                std::uint64_t server_random) {
  std::string ikm(24, '\0');
  std::memcpy(ikm.data(), &shared_secret, 8);
  std::memcpy(ikm.data() + 8, &client_random, 8);
  std::memcpy(ikm.data() + 16, &server_random, 8);
  SessionKeys keys;
  keys.client_to_server = derive_key(ikm, "c2s");
  keys.server_to_client = derive_key(ikm, "s2c");
  return keys;
}

ClientHandshake::ClientHandshake(EndpointConfig config, sim::Rng& rng)
    : config_(std::move(config)), rng_(rng) {}

ClientHello ClientHandshake::start() {
  ephemeral_ = generate_keypair(rng_);
  client_random_ = rng_.next();
  started_ = true;
  ClientHello hello{client_random_, ephemeral_.public_key};
  transcript_ = hello.serialize();
  return hello;
}

std::optional<ClientFinished> ClientHandshake::on_server_hello(
    const ServerHello& hello, sim::TimePoint now) {
  if (!started_ || complete_) {
    error_ = HandshakeError::kStateViolation;
    return std::nullopt;
  }
  // Transcript covered by the server's CertVerify: ClientHello + the
  // server hello fields + the server certificate.
  std::string covered = transcript_ +
                        pack_u64(hello.random, hello.ephemeral_public) +
                        hello.certificate.to_be_signed();
  if (!CertificateAuthority::verify_certificate(
          hello.certificate, config_.ca_public_key, config_.ca_name, now)) {
    error_ = HandshakeError::kBadCertificate;
    return std::nullopt;
  }
  if (!verify(hello.certificate.public_key, covered, hello.cert_verify)) {
    error_ = HandshakeError::kBadSignature;
    return std::nullopt;
  }
  if (config_.authorize_peer &&
      !config_.authorize_peer(hello.certificate.identity)) {
    error_ = HandshakeError::kUnauthorizedPeer;
    return std::nullopt;
  }

  transcript_ = covered + hello.cert_verify.serialize();
  shared_secret_ =
      dh_shared_secret(ephemeral_.private_key, hello.ephemeral_public);
  keys_ = derive_session_keys(shared_secret_, client_random_, hello.random);
  keys_.peer_identity = hello.certificate.identity;

  ClientFinished fin;
  fin.certificate = config_.certificate;
  const std::string client_covered =
      transcript_ + fin.certificate.to_be_signed();
  fin.cert_verify = config_.signer(client_covered);
  transcript_ = client_covered + fin.cert_verify.serialize();
  fin.finished_mac =
      finished_mac(keys_.client_to_server, transcript_, "client-finished");
  transcript_ += std::string(
      reinterpret_cast<const char*>(fin.finished_mac.data()),
      fin.finished_mac.size());
  return fin;
}

bool ClientHandshake::on_server_finished(const ServerFinished& fin) {
  if (complete_ || shared_secret_ == 0) {
    error_ = HandshakeError::kStateViolation;
    return false;
  }
  const auto expected =
      finished_mac(keys_.server_to_client, transcript_, "server-finished");
  if (!tags_equal(expected, fin.finished_mac)) {
    error_ = HandshakeError::kBadFinished;
    return false;
  }
  complete_ = true;
  return true;
}

ServerHandshake::ServerHandshake(EndpointConfig config, sim::Rng& rng)
    : config_(std::move(config)), rng_(rng) {}

std::optional<ServerHello> ServerHandshake::on_client_hello(
    const ClientHello& hello) {
  if (hello_done_) {
    error_ = HandshakeError::kStateViolation;
    return std::nullopt;
  }
  ephemeral_ = generate_keypair(rng_);
  ServerHello out;
  out.random = rng_.next();
  out.ephemeral_public = ephemeral_.public_key;
  out.certificate = config_.certificate;

  const std::string covered = hello.serialize() +
                              pack_u64(out.random, out.ephemeral_public) +
                              out.certificate.to_be_signed();
  out.cert_verify = config_.signer(covered);
  transcript_ = covered + out.cert_verify.serialize();

  shared_secret_ =
      dh_shared_secret(ephemeral_.private_key, hello.ephemeral_public);
  keys_ = derive_session_keys(shared_secret_, hello.random, out.random);
  hello_done_ = true;
  return out;
}

std::optional<ServerFinished> ServerHandshake::on_client_finished(
    const ClientFinished& fin, sim::TimePoint now) {
  if (!hello_done_ || complete_) {
    error_ = HandshakeError::kStateViolation;
    return std::nullopt;
  }
  if (!CertificateAuthority::verify_certificate(
          fin.certificate, config_.ca_public_key, config_.ca_name, now)) {
    error_ = HandshakeError::kBadCertificate;
    return std::nullopt;
  }
  const std::string client_covered =
      transcript_ + fin.certificate.to_be_signed();
  if (!verify(fin.certificate.public_key, client_covered, fin.cert_verify)) {
    error_ = HandshakeError::kBadSignature;
    return std::nullopt;
  }
  if (config_.authorize_peer &&
      !config_.authorize_peer(fin.certificate.identity)) {
    error_ = HandshakeError::kUnauthorizedPeer;
    return std::nullopt;
  }
  std::string transcript = client_covered + fin.cert_verify.serialize();
  const auto expected =
      finished_mac(keys_.client_to_server, transcript, "client-finished");
  if (!tags_equal(expected, fin.finished_mac)) {
    error_ = HandshakeError::kBadFinished;
    return std::nullopt;
  }
  transcript += std::string(
      reinterpret_cast<const char*>(fin.finished_mac.data()),
      fin.finished_mac.size());
  keys_.peer_identity = fin.certificate.identity;

  ServerFinished out;
  out.finished_mac =
      finished_mac(keys_.server_to_client, transcript, "server-finished");
  complete_ = true;
  return out;
}

std::string RecordChannel::seal(std::string_view plaintext) {
  const Nonce96 nonce = derive_nonce("record", seal_seq_);
  std::string ciphertext = chacha20_apply(key_, nonce, plaintext);
  const Key256 mac_key = derive_key(
      std::string_view(reinterpret_cast<const char*>(key_.data()), key_.size()),
      "record-mac");
  std::string seq_and_ct(8, '\0');
  std::memcpy(seq_and_ct.data(), &seal_seq_, 8);
  seq_and_ct += ciphertext;
  const auto tag = mac256(mac_key, seq_and_ct);
  ++seal_seq_;

  std::string record;
  record.reserve(8 + 32 + ciphertext.size());
  record.append(seq_and_ct.data(), 8);
  record.append(reinterpret_cast<const char*>(tag.data()), tag.size());
  record.append(ciphertext);
  return record;
}

std::optional<std::string> RecordChannel::open(std::string_view record) {
  if (record.size() < 40) return std::nullopt;
  std::uint64_t seq = 0;
  std::memcpy(&seq, record.data(), 8);
  if (seq != open_seq_) return std::nullopt;  // strict ordering, no replay
  const std::string_view tag = record.substr(8, 32);
  const std::string_view ciphertext = record.substr(40);

  const Key256 mac_key = derive_key(
      std::string_view(reinterpret_cast<const char*>(key_.data()), key_.size()),
      "record-mac");
  std::string seq_and_ct(record.substr(0, 8));
  seq_and_ct += std::string(ciphertext);
  const auto expected = mac256(mac_key, seq_and_ct);
  if (!tags_equal(expected,
                  std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(tag.data()),
                      tag.size()))) {
    return std::nullopt;
  }
  const Nonce96 nonce = derive_nonce("record", seq);
  ++open_seq_;
  return chacha20_apply(key_, nonce, ciphertext);
}

}  // namespace canal::crypto
